"""Experiment F2 -- Fig. 2: Venn diagram of the confirmation techniques."""

from __future__ import annotations

from benchmarks.conftest import print_rows


def test_fig2_detection_venn(benchmark, paper_report):
    venn = benchmark(paper_report.figure_venn)
    print_rows(
        "Fig. 2 - activities confirmed by each method combination",
        ["methods", "activities"],
        [[key, count] for key, count in sorted(venn.items())],
    )
    result = paper_report.result
    # Shape checks: the funder+exit overlap is the largest region and most
    # activities are confirmed by at least two transaction-analysis methods.
    largest = max(venn, key=venn.get)
    assert "common-funder" in largest and "common-exit" in largest
    assert result.confirmed_by_at_least(2) / result.activity_count > 0.5
