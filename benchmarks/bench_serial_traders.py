"""Experiment S-serial -- serial wash traders (Sec. V-D)."""

from __future__ import annotations

from benchmarks.conftest import print_rows


def test_serial_traders(benchmark, paper_report):
    stats = benchmark(paper_report.serial_traders)
    print_rows(
        "Serial wash traders (Sec. V-D)",
        ["statistic", "value"],
        [
            ["involved accounts", stats.total_accounts],
            ["serial accounts", f"{stats.serial_accounts} ({stats.serial_account_fraction:.1%})"],
            ["activities with a serial participant", f"{stats.activities_with_serial} ({stats.serial_activity_fraction:.1%})"],
            ["mean activities per serial trader", f"{stats.mean_activities_per_serial:.2f}"],
            ["max activities by one account", stats.max_activities_by_one_account],
            ["serial traders hitting one collection repeatedly", stats.serial_traders_hitting_same_collection],
            ["serial traders collaborating only with serials", stats.serial_only_collaborators],
        ],
    )
    # Shape checks: a minority of accounts is responsible for a majority of
    # activities, and serial traders average well above two activities.
    assert stats.serial_account_fraction < 0.5
    assert stats.serial_activity_fraction > 0.5
    assert stats.mean_activities_per_serial >= 2.0
