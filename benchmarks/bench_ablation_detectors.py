"""Ablation A2 -- marginal value of each confirmation technique."""

from __future__ import annotations

from benchmarks.conftest import print_rows
from repro.core.activity import DetectionMethod
from repro.core.detectors.pipeline import WashTradingPipeline


def run_with_methods(world, dataset, methods):
    pipeline = WashTradingPipeline(
        labels=world.labels, is_contract=world.is_contract, enabled_methods=methods
    )
    return pipeline.run(dataset)


def test_ablation_detectors(benchmark, paper_world, paper_report):
    dataset = paper_report.dataset
    full = paper_report.result
    ground_truth = paper_world.ground_truth

    def only_funder_and_exit():
        return run_with_methods(
            paper_world,
            dataset,
            {DetectionMethod.COMMON_FUNDER, DetectionMethod.COMMON_EXIT},
        )

    funder_exit = benchmark(only_funder_and_exit)

    rows = []
    for label, methods in [
        ("all five techniques (paper)", set(DetectionMethod.paper_methods())),
        ("zero-risk only", {DetectionMethod.ZERO_RISK}),
        ("common funder only", {DetectionMethod.COMMON_FUNDER}),
        ("common exit only", {DetectionMethod.COMMON_EXIT}),
        ("funder + exit", {DetectionMethod.COMMON_FUNDER, DetectionMethod.COMMON_EXIT}),
    ]:
        if methods == set(DetectionMethod.paper_methods()):
            result = full
        elif methods == {DetectionMethod.COMMON_FUNDER, DetectionMethod.COMMON_EXIT}:
            result = funder_exit
        else:
            result = run_with_methods(paper_world, dataset, methods)
        recall = ground_truth.match_against(result.washed_nfts()).recall
        rows.append([label, result.activity_count, f"{recall:.1%}"])
    print_rows(
        "Ablation: confirmation techniques vs planted ground truth",
        ["variant", "confirmed activities", "recall on planted activities"],
        rows,
    )
    assert funder_exit.activity_count <= full.activity_count
