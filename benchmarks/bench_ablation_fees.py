"""Ablation A4 -- venue fee sensitivity of reward farming profitability.

The paper argues Foundation's 15% fee is why it shows no wash trading.
This ablation replays the same reward-farming operation under different
fee levels and shows where the economics flip.
"""

from __future__ import annotations

from benchmarks.conftest import print_rows
from repro.core.profitability.rewards import analyze_reward_profitability
from tests.helpers import make_micro_world


def farm_with_fee(fee_bps: int):
    """Run one 2-account LooksRare farm with the venue fee overridden."""
    world = make_micro_world(seed=fee_bps + 1)
    venue = world.marketplaces.venue("LooksRare")
    venue.fee_bps = fee_bps
    kit = world.kit
    funder = world.account("funder", funded_eth=600, day=1)
    alice = world.account("alice")
    bob = world.account("bob")
    kit.transfer_eth(funder, alice, 220, 1)
    kit.transfer_eth(funder, bob, 220, 1)
    token_id = kit.mint(world.collection_address, alice, 2)
    seller, buyer, price = alice, bob, 200.0
    for _ in range(6):
        kit.marketplace_sale("LooksRare", world.collection_address, token_id, seller, buyer, price, 2)
        seller, buyer = buyer, seller
        price = price * (1 - fee_bps / 10_000) - 0.01
    for account in (alice, bob):
        kit.claim_rewards("LooksRare", account, 3)
    exit_account = world.account("exit")
    for account in (alice, bob):
        balance = kit.balance_eth(account)
        if balance > 1:
            kit.transfer_eth(account, exit_account, balance - 0.5, 4)
    result = world.run_pipeline()
    profitability = analyze_reward_profitability(result, world.dataset(), world.market_context())
    outcomes = profitability["LooksRare"].outcomes
    return outcomes[0] if outcomes else None


def test_ablation_fee_sensitivity(benchmark):
    outcome_low = benchmark.pedantic(farm_with_fee, args=(200,), iterations=1, rounds=1)
    rows = []
    balances = {}
    for fee_bps in (0, 200, 500, 1500):
        outcome = outcome_low if fee_bps == 200 else farm_with_fee(fee_bps)
        assert outcome is not None
        balances[fee_bps] = outcome.balance_usd
        rows.append(
            [
                f"{fee_bps / 100:.1f}%",
                f"{outcome.rewards_usd:,.0f}",
                f"{outcome.nftm_fees_usd:,.0f}",
                f"{outcome.balance_usd:,.0f}",
                "gain" if outcome.balance_usd > 0 else "loss",
            ]
        )
    print_rows(
        "Ablation: venue fee vs reward-farming balance (same operation)",
        ["venue fee", "rewards ($)", "venue fees paid ($)", "balance ($)", "outcome"],
        rows,
    )
    # The same operation gets strictly less profitable as fees rise, and a
    # Foundation-level 15% fee destroys far more value than a 2% fee.
    assert balances[0] > balances[200] > balances[1500]
