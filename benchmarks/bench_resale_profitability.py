"""Experiment S-resale -- NFT resale profitability (Sec. VI-B)."""

from __future__ import annotations

from benchmarks.conftest import print_rows


def test_resale_profitability(benchmark, paper_report):
    resale = benchmark(paper_report.resale_profitability)
    print_rows(
        "NFT resale after wash trading (Sec. VI-B)",
        ["statistic", "value"],
        [
            ["activities on non-reward venues", resale.total_activities],
            ["never resold", f"{resale.unsold_count} ({resale.unsold_fraction:.1%})"],
            ["resold same day", f"{resale.sold_same_day_fraction():.1%}"],
            ["resold within a month", f"{resale.sold_within_month_fraction():.1%}"],
            ["success rate, price difference only", f"{resale.success_rate_gross():.1%}"],
            ["success rate, fees included (ETH)", f"{resale.success_rate_net():.1%}"],
            ["success rate, fees included (USD)", f"{resale.success_rate_usd():.1%}"],
            ["mean gain of winners (ETH)", f"{resale.mean_gain_eth():.2f}"],
            ["mean loss of losers (ETH)", f"{resale.mean_loss_eth():.2f}"],
            ["max gain (ETH)", f"{resale.max_gain_eth():.2f}"],
            ["max loss (ETH)", f"{resale.max_loss_eth():.2f}"],
        ],
    )
    # Shape checks: a large share of washed NFTs is never resold, and once
    # fees are included roughly half of the resales lose money.
    assert resale.unsold_fraction > 0.4
    assert 0.2 <= resale.success_rate_net() <= 0.85
    assert resale.success_rate_net() <= resale.success_rate_gross()
