"""Experiment F3 -- Fig. 3: wash trading volumes vs legitimate volumes."""

from __future__ import annotations

from benchmarks.conftest import print_rows
from repro.analysis.cdf import quantile


def test_fig3_volume_cdf(benchmark, paper_report):
    series = benchmark(paper_report.figure_volume_cdf)
    rows = []
    medians = {}
    for item in series:
        values = [value for value, _fraction in item.points]
        medians[item.label] = quantile(values, 0.5)
        rows.append(
            [
                item.label,
                len(values),
                f"{quantile(values, 0.5):,.0f}",
                f"{quantile(values, 0.9):,.0f}",
            ]
        )
    print_rows("Fig. 3 - per-activity volume (USD), median and p90", ["series", "n", "median", "p90"], rows)
    # Shape checks: wash activities (especially LooksRare) move far more
    # volume than ordinary NFT trading.
    assert "LooksRare" in medians
    assert medians["LooksRare"] > medians["Volume w/o wash trading"]
