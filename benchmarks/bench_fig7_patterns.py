"""Experiment F7 -- Fig. 7: structural patterns of wash trading activities."""

from __future__ import annotations

from benchmarks.conftest import print_rows
from repro.core.characterization.patterns import PATTERN_LIBRARY


def test_fig7_patterns(benchmark, paper_report):
    patterns = benchmark(paper_report.figure_patterns)
    descriptions = {f"pattern-{spec.pattern_id}": spec.description for spec in PATTERN_LIBRARY}
    print_rows(
        "Fig. 7 - occurrences of each SCC pattern",
        ["pattern", "occurrences", "description"],
        [[key, count, descriptions.get(key, "-")] for key, count in patterns.items()],
    )
    total = sum(patterns.values())
    # Shape checks: the two-account round trip dominates, circular patterns
    # are the most common multi-account shapes, and the library covers the
    # vast majority of activities (paper: 93.8%).
    assert patterns.get("pattern-1", 0) == max(patterns.values())
    covered = total - patterns.get("other", 0)
    assert covered / total > 0.9
