"""Experiment S-serve -- the query/serving subsystem under load.

Three acceptance checks for the serving layer (:mod:`repro.serve`):

* ``test_cached_aggregates_beat_recompute`` drives an identical mixed
  point/aggregate query workload against two services over the same
  world -- one with the dirty-token-keyed :class:`AggregateCache`, one
  recomputing every aggregate per query -- and asserts the cached
  service wins the wall clock while serving identical answers.  It
  reports sustained queries/sec alongside per-tick ingest latency.
* ``test_served_answers_match_batch_at_every_version`` replays a chain
  with periodic adversarial reorgs and, at *every* published version,
  checks the full query surface against a fresh batch
  ``WashTradingPipeline(engine="columnar")`` build over that canonical
  chain prefix (causally clamped, like the stream parity tests).
* ``test_concurrent_load_sustains_queries`` runs a :class:`LoadGenerator`
  fleet on reader threads while the main thread advances the chain
  through a reorg storm -- versions must stay monotone per reader, a
  replaying consumer must reconcile every retraction, and the final
  state must match a batch build.

With ``--wire``, two more checks cross the network boundary
(:mod:`repro.serve.wire`):

* ``test_wire_load_parity_under_live_ingest`` points the *same*
  :class:`LoadGenerator` fleet at a TCP socket (through
  :class:`~repro.serve.wire.RemoteQueryService`) while ingest rides a
  reorg storm, reports sustained over-the-wire queries/sec, and samples
  full wire parity at pinned versions throughout the storm -- the
  server must stay correct under load, not just answer fast.
* ``test_wire_vs_in_process_throughput`` runs one fixed mixed workload
  both ways over a settled service and reports the socket's overhead
  factor next to both throughputs.

With ``--obs``, ``test_obs_identical_answers_and_overhead`` repeats the
cached workload with a live :class:`~repro.obs.MetricsRegistry` wired
through every layer and prints the instrumented-vs-bare comparison
column -- the answers must be identical (the parity-neutrality bar; the
hard <5% ingest-overhead assertion runs at scale in
``bench_pipeline_scaling``).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve_load.py -q -s
    PYTHONPATH=src python -m pytest benchmarks/bench_serve_load.py --smoke -q -s
    PYTHONPATH=src python -m pytest benchmarks/bench_serve_load.py --wire --smoke -q -s
    PYTHONPATH=src python -m pytest benchmarks/bench_serve_load.py --obs --smoke -q -s
"""

from __future__ import annotations

import random
import threading
import time
from collections import Counter

from repro.chain.node import EthereumNode
from repro.core.detectors.pipeline import WashTradingPipeline
from repro.ingest.dataset import build_dataset
from repro.serve import ServeService, record_key, serving_parity_mismatches
from repro.serve.load import LoadGenerator
from repro.simulation.builder import build_default_world
from repro.simulation.reorg import apply_random_reorg

#: Shared monitoring cadence of the cached-vs-recompute comparison.
WINDOW_COUNT = 16


class ClampedNode(EthereumNode):
    """An archive-node view that hides everything past ``upper``.

    ``build_dataset(to_block=B)`` alone leaks whole-chain account
    histories; clamping makes the batch reference causally identical to
    what a monitor at block B could know (see
    ``tests/stream/test_stream_parity.py``).
    """

    def __init__(self, node: EthereumNode, upper: int) -> None:
        super().__init__(node.chain)
        self._upper = upper

    def get_transactions_of(self, address):
        return [
            tx
            for tx in super().get_transactions_of(address)
            if tx.block_number <= self._upper
        ]


def batch_at(world, block):
    """The causally clamped batch reference at one chain prefix."""
    dataset = build_dataset(
        ClampedNode(world.node, block),
        world.marketplace_addresses,
        to_block=block,
    )
    return WashTradingPipeline(
        labels=world.labels, is_contract=world.is_contract, engine="columnar"
    ).run(dataset)


def tick_boundaries(head: int, windows: int = WINDOW_COUNT):
    return sorted({max(head * (w + 1) // windows, 0) for w in range(windows)})


def query_sweep(query, rng, aggregate_repeats: int, point_queries: int) -> int:
    """The per-tick mixed workload of the cache comparison; returns count."""
    served = 0
    version = query.version()
    for _ in range(aggregate_repeats):
        query.funnel_stats()
        served += 1
        for contract in query.collections():
            query.collection_rollup(contract)
            served += 1
        for venue in query.venues():
            query.marketplace_rollup(venue)
            served += 1
    for _ in range(point_queries):
        roll = rng.random()
        if roll < 0.5 and version.token_order:
            query.token_status(rng.choice(version.token_order))
        elif roll < 0.8 and version.account_profiles:
            query.account_profile(rng.choice(sorted(version.account_profiles)))
        else:
            query.list_confirmed(limit=10)
        served += 1
    return served


def test_cached_aggregates_beat_recompute(serve_profile):
    """Identical workload, identical answers -- the cache must win."""
    world = build_default_world(serve_profile["preset"]())
    head = world.node.block_number
    boundaries = tick_boundaries(head)

    results = {}
    for label, use_cache in (("cached", True), ("recompute", False)):
        service = ServeService.for_world(world, use_cache=use_cache)
        rng = random.Random(7)
        query_time = 0.0
        served = 0
        tick_latencies = []
        for upper in boundaries:
            started = time.perf_counter()
            service.advance(upper)
            tick_latencies.append(time.perf_counter() - started)
            started = time.perf_counter()
            served += query_sweep(
                service.query,
                rng,
                serve_profile["aggregate_repeats"],
                serve_profile["point_queries"],
            )
            query_time += time.perf_counter() - started
        results[label] = {
            "service": service,
            "query_time": query_time,
            "served": served,
            "ticks": tick_latencies,
        }

    cached, recompute = results["cached"], results["recompute"]
    print(f"\n== serve load: cached vs recompute == head={head} "
          f"ticks={len(boundaries)} queries={cached['served']}")
    for label, run in results.items():
        qps = run["served"] / run["query_time"] if run["query_time"] else float("inf")
        ticks = run["ticks"]
        print(
            f"  {label:<10} query total={run['query_time']:.3f}s "
            f"({qps:>10,.0f} q/s)  tick mean="
            f"{sum(ticks) / len(ticks) * 1e3:6.2f}ms max={max(ticks) * 1e3:6.2f}ms"
        )
    stats = cached["service"].cache.stats
    print(
        f"  cache: {stats.hits} hits / {stats.lookups} lookups "
        f"({stats.hit_rate:.1%}), {stats.invalidated} invalidated"
    )
    print(f"  speedup={recompute['query_time'] / cached['query_time']:.2f}x")

    # Identical answers... (a cached aggregate may carry the older
    # version it was computed at -- still valid, nothing invalidated it
    # since -- so normalize the computed-at version before comparing)
    import dataclasses

    def same_answer(left, right):
        return dataclasses.replace(left, version=0) == dataclasses.replace(
            right, version=0
        )

    cached_query = cached["service"].query
    recompute_query = recompute["service"].query
    assert same_answer(cached_query.funnel_stats(), recompute_query.funnel_stats())
    for contract in cached_query.collections():
        assert same_answer(
            cached_query.collection_rollup(contract),
            recompute_query.collection_rollup(contract),
        )
    assert cached_query.venues() == recompute_query.venues()
    for venue in cached_query.venues():
        assert same_answer(
            cached_query.marketplace_rollup(venue),
            recompute_query.marketplace_rollup(venue),
        )
    assert cached["served"] == recompute["served"]
    assert cached_query.version().confirmed_activity_count > 0
    # ...and the dirty-keyed cache wins the wall clock.
    assert stats.hits > stats.misses
    assert cached["query_time"] < recompute["query_time"]


def test_sharded_scatter_gather_beats_single_shard(serve_profile, shard_counts):
    """Same fine-grained tick schedule, same answers -- four shards must
    serve the mixed workload at >=2x the single-index throughput.

    The full profile runs the live tail of the *default* simulated
    world: ~150 days, 36 collections, ~1.8k tokens -- more than 4x the
    seed-scale world the other serving benchmarks use (``small``: 60
    days, 11 collections, ~350 tokens).  Scale is what separates the
    topologies: the monolithic index re-folds every token state each
    time a tick invalidates its funnel entry, while a shard publishes a
    differentially maintained funnel partial (O(dirty slice) per tick)
    and routes each collection rollup to its single owner shard.  The
    workload is the same mix the cache comparison uses (aggregate
    sweeps plus token/account/listing point queries); ingest is
    reported but untimed.  The hard >=2x bar runs on the full profile;
    the smoke profile pins answer equivalence only.  The run ends with
    the sharded serving-parity self-checks -- per-shard partitioning
    and merged answers against a causally clamped batch build -- so the
    speedup can never come at the price of a wrong answer.
    """
    import dataclasses

    from repro.serve import sharded_parity_mismatches
    from repro.simulation.config import SimulationConfig

    if serve_profile["smoke"]:
        world = build_default_world(serve_profile["preset"]())
    else:
        world = build_default_world(SimulationConfig())
    head = world.node.block_number
    # A fixed fine-grained schedule near the head, shared by every run:
    # warm coarsely to the start of the window, then stride 2-8 blocks.
    rng = random.Random(17)
    warm_start = max(0, head - 5 * serve_profile["shard_ticks"])
    schedule = []
    block = warm_start
    while block < head:
        block = min(head, block + rng.randint(2, 8))
        schedule.append(block)

    results = {}
    for shards in shard_counts:
        service = ServeService.for_world(world, shards=shards)
        service.advance(warm_start)
        query_rng = random.Random(23)
        query_time = 0.0
        tick_time = 0.0
        served = 0
        clean_shard_ticks = 0
        for upper in schedule:
            started = time.perf_counter()
            service.advance(upper)
            tick_time += time.perf_counter() - started
            if shards > 1:
                clean_shard_ticks += sum(
                    1
                    for shard_version in service.query.version().shards
                    if shard_version.dirty_token_count == 0
                )
            started = time.perf_counter()
            served += query_sweep(
                service.query,
                query_rng,
                serve_profile["aggregate_repeats"],
                serve_profile["point_queries"],
            )
            query_time += time.perf_counter() - started
        results[shards] = {
            "service": service,
            "query_time": query_time,
            "tick_time": tick_time,
            "served": served,
            "clean": clean_shard_ticks,
        }

    print(
        f"\n== sharded scatter-gather vs single index == head={head} "
        f"fine ticks={len(schedule)} (blocks {warm_start}..{head})"
    )
    for shards, run in results.items():
        qps = (
            run["served"] / run["query_time"]
            if run["query_time"]
            else float("inf")
        )
        stats = run["service"].cache_stats()
        isolation = (
            f"  clean-shard ticks={run['clean']}/{shards * len(schedule)}"
            if shards > 1
            else ""
        )
        print(
            f"  shards={shards}  query total={run['query_time']:.3f}s "
            f"({qps:>10,.0f} q/s)  ingest total={run['tick_time']:.3f}s  "
            f"cache {stats.hits}/{stats.lookups} hits "
            f"({stats.hit_rate:.1%}), {stats.invalidated} invalidated"
            f"{isolation}"
        )

    # Identical answers at the settled head, whatever the topology (a
    # cached aggregate may carry the older version it was computed at,
    # so normalize the computed-at version before comparing).
    def same_answer(left, right):
        return dataclasses.replace(left, version=0) == dataclasses.replace(
            right, version=0
        )

    baseline = results[1]["service"].query
    for shards, run in results.items():
        if shards == 1:
            continue
        query = run["service"].query
        assert run["served"] == results[1]["served"]
        assert same_answer(baseline.funnel_stats(), query.funnel_stats())
        assert baseline.collections() == query.collections()
        assert baseline.venues() == query.venues()
        for contract in baseline.collections():
            assert same_answer(
                baseline.collection_rollup(contract),
                query.collection_rollup(contract),
            )
        for venue in baseline.venues():
            assert same_answer(
                baseline.marketplace_rollup(venue),
                query.marketplace_rollup(venue),
            )
        assert tuple(baseline.version().confirmed) == tuple(
            query.version().confirmed
        )
    assert baseline.version().confirmed_activity_count > 0

    # The acceptance self-checks: the widest topology must hold both
    # the per-shard partitioning parity and the merged global parity
    # against a causally clamped batch build at the settled head.
    widest = max(shard_counts)
    widest_service = results[widest]["service"]
    batch = batch_at(world, widest_service.monitor.processed_block)
    assert sharded_parity_mismatches(widest_service.index, batch) == []
    assert (
        serving_parity_mismatches(widest_service.query, batch) == []
    )

    speedup = (
        results[1]["query_time"] / results[widest]["query_time"]
        if results[widest]["query_time"]
        else float("inf")
    )
    print(f"  speedup shards={widest} over shards=1: {speedup:.2f}x")
    if widest >= 4 and not serve_profile["smoke"]:
        assert speedup >= 2.0, (
            f"{widest} shards must at least double single-index "
            f"mixed-workload throughput, got {speedup:.2f}x"
        )


def test_served_answers_match_batch_at_every_version(serve_profile):
    """Every published version equals a batch build over its prefix."""
    from repro.simulation.config import SimulationConfig

    world = build_default_world(SimulationConfig.tiny())
    service = ServeService.for_world(world, max_reorg_depth=64)
    rng = random.Random(20230312)
    checked = 0
    tick = 0
    while True:
        head = world.node.block_number
        if service.monitor.processed_block >= head:
            break
        target = min(head, service.monitor.processed_block + rng.randint(20, 80))
        version = service.advance(target)
        mismatches = serving_parity_mismatches(
            service.query, batch_at(world, service.monitor.processed_block),
            version=version,
        )
        assert mismatches == [], f"version {version.version}: {mismatches}"
        checked += 1
        tick += 1
        if tick % serve_profile["reorg_every"] == 0:
            apply_random_reorg(
                world.chain,
                rng.randint(1, 10),
                rng,
                drop_probability=0.35,
                delay_probability=0.25,
                shorten=1 if tick % (2 * serve_profile["reorg_every"]) == 0 else 0,
            )
    # Settle the last revision, then check the final canonical state.
    version = service.advance()
    mismatches = serving_parity_mismatches(
        service.query,
        batch_at(world, service.monitor.processed_block),
        version=version,
    )
    assert mismatches == []
    print(f"\n== serve parity at every version == {checked + 1} versions checked, "
          f"final block {version.block}, {version.confirmed_activity_count} confirmed")
    assert version.confirmed_activity_count > 0


def test_concurrent_load_sustains_queries(serve_profile):
    """Reader fleet under a live reorg storm: monotone, reconciled, fast."""
    from repro.simulation.config import SimulationConfig

    world = build_default_world(SimulationConfig.tiny())
    service = ServeService.for_world(world, max_reorg_depth=64)
    stop = threading.Event()
    generators = [
        LoadGenerator(service.query, seed=100 + i, stop=stop, mirror=(i == 0))
        for i in range(serve_profile["query_threads"])
    ]
    for generator in generators:
        generator.thread.start()

    rng = random.Random(99)
    started = time.perf_counter()
    tick_latencies = []
    tick = 0
    deadline = time.perf_counter() + serve_profile["load_seconds"]
    while time.perf_counter() < deadline:
        head = world.node.block_number
        if service.monitor.processed_block >= head:
            apply_random_reorg(
                world.chain, rng.randint(1, 10), rng, drop_probability=0.35
            )
        target = min(
            world.node.block_number,
            service.monitor.processed_block + rng.randint(10, 60),
        )
        tick_started = time.perf_counter()
        service.advance(target)
        tick_latencies.append(time.perf_counter() - tick_started)
        tick += 1
        if tick % serve_profile["reorg_every"] == 0:
            apply_random_reorg(
                world.chain, rng.randint(1, 8), rng, drop_probability=0.3
            )
    service.advance()  # settle the last revision
    stop.set()
    for generator in generators:
        generator.thread.join(timeout=30)
        assert not generator.thread.is_alive()
    elapsed = time.perf_counter() - started

    for generator in generators:
        assert generator.errors == []
    total = sum(generator.queries for generator in generators)
    qps = total / elapsed if elapsed else float("inf")
    print(
        f"\n== concurrent serve load == {total} queries from "
        f"{len(generators)} readers in {elapsed:.2f}s ({qps:,.0f} q/s), "
        f"{tick} ticks, tick mean="
        f"{sum(tick_latencies) / len(tick_latencies) * 1e3:.2f}ms "
        f"max={max(tick_latencies) * 1e3:.2f}ms"
    )
    assert total > 0

    # The replaying reader reconstructs exactly the served final truth.
    mirror = next(g for g in generators if g.mirror is not None)
    final = service.query.version()
    assert +mirror.mirror == Counter(record.key for record in final.confirmed)

    # And the settled state equals a fresh batch build.
    batch = WashTradingPipeline(
        labels=world.labels, is_contract=world.is_contract, engine="columnar"
    ).run(build_dataset(world.node, world.marketplace_addresses))
    assert serving_parity_mismatches(service.query, batch, version=final) == []


def test_obs_identical_answers_and_overhead(serve_profile, obs_enabled):
    """Same workload instrumented vs bare: same answers, marginal cost.

    Reports the instrumented-vs-bare comparison column (ingest ticks and
    query throughput) plus the end-to-end alert-latency column -- the
    block-seen-to-socket-write p50/p95 a live wire subscriber actually
    experienced -- and asserts the answers are identical; the hard <5%
    ingest-overhead bar lives in ``bench_pipeline_scaling`` where the
    world is large enough for the ratio to be meaningful.
    """
    import dataclasses

    from repro.obs import MetricsRegistry
    from repro.serve.wire import WireClient

    world = build_default_world(serve_profile["preset"]())
    head = world.node.block_number
    boundaries = tick_boundaries(head)

    results = {}
    for label, registry in (("bare", None), ("obs", MetricsRegistry())):
        service = ServeService.for_world(world, registry=registry)
        # Both runs carry one live wire subscriber so the tick loop does
        # identical fan-out work -- and the instrumented run's latency
        # ledger sees the terminal socket_write marks.
        server = service.serve_wire()
        subscriber = WireClient(*server.address).connect()
        stream = subscriber.subscribe(-1)
        rng = random.Random(7)
        query_time = 0.0
        served = 0
        tick_time = 0.0
        for upper in boundaries:
            started = time.perf_counter()
            service.advance(upper)
            tick_time += time.perf_counter() - started
            started = time.perf_counter()
            served += query_sweep(
                service.query,
                rng,
                serve_profile["aggregate_repeats"],
                serve_profile["point_queries"],
            )
            query_time += time.perf_counter() - started
        # Drain the stream so every published alert reached the socket.
        delivered = 0
        expected = len(service.monitor.alerts)
        while delivered < expected:
            alert = stream.next(timeout=10.0)
            assert alert is not None, (
                f"subscriber stalled at {delivered}/{expected} alerts"
            )
            delivered += 1
        subscriber.close()
        results[label] = {
            "service": service,
            "registry": registry,
            "tick_time": tick_time,
            "query_time": query_time,
            "served": served,
            "delivered": delivered,
        }

    bare, obs = results["bare"], results["obs"]
    print(f"\n== serve load: obs vs bare == head={head} "
          f"ticks={len(boundaries)} queries={bare['served']}")
    for label, run in results.items():
        qps = run["served"] / run["query_time"] if run["query_time"] else float("inf")
        print(
            f"  {label:<5} ingest total={run['tick_time']:.3f}s "
            f"query total={run['query_time']:.3f}s ({qps:>10,.0f} q/s)"
        )
    ingest_ratio = obs["tick_time"] / bare["tick_time"] if bare["tick_time"] else 1.0
    print(f"  ingest overhead: {(ingest_ratio - 1) * 100:+.1f}%")

    # Identical answers (normalize the computed-at version, as above).
    def same_answer(left, right):
        return dataclasses.replace(left, version=0) == dataclasses.replace(
            right, version=0
        )

    bare_query = bare["service"].query
    obs_query = obs["service"].query
    assert same_answer(bare_query.funnel_stats(), obs_query.funnel_stats())
    for contract in bare_query.collections():
        assert same_answer(
            bare_query.collection_rollup(contract),
            obs_query.collection_rollup(contract),
        )
    assert bare_query.venues() == obs_query.venues()
    assert bare["served"] == obs["served"]
    assert (
        bare_query.version().confirmed_activity_count
        == obs_query.version().confirmed_activity_count
        > 0
    )

    # The instrumented run really measured itself.
    snapshot = obs["registry"].snapshot()
    assert snapshot["counters"]["monitor_ticks_total"] == len(boundaries)
    assert snapshot["counters"]["serve_cache_hits_total"] > 0
    tick_spans = snapshot["histograms"]['span_seconds{span="tick"}']
    assert tick_spans["count"] == len(boundaries)
    print(
        f"  obs surface: tick p95={tick_spans['p95'] * 1e3:.2f}ms "
        f"cache hit ratio={snapshot['gauges']['serve_cache_hit_ratio']:.1%}"
    )

    # The end-to-end alert-latency column: block-seen to socket-write as
    # the live subscriber experienced it, one observation per delivered
    # frame.  The ledger must close the full path for every frame; the
    # client can count a frame a beat before the server-side pusher
    # records its mark, so give the last observation a moment to land.
    deadline = time.perf_counter() + 5.0
    while time.perf_counter() < deadline:
        snapshot = obs["registry"].snapshot()
        total_latency = snapshot["histograms"][
            'alert_latency_seconds{stage="total"}'
        ]
        if total_latency["count"] >= obs["delivered"]:
            break
        time.sleep(0.01)
    assert total_latency["count"] == obs["delivered"] > 0
    print(
        f"  alert e2e (block-seen→socket-write): "
        f"p50={total_latency['p50'] * 1e3:.2f}ms "
        f"p95={total_latency['p95'] * 1e3:.2f}ms "
        f"over {int(total_latency['count'])} delivered frames"
    )

    for run in results.values():
        run["service"].shutdown()


def test_wire_load_parity_under_live_ingest(serve_profile, wire_enabled):
    """TCP reader fleet vs live ingest: fast *and* correct at every pin."""
    from repro.serve import RemoteQueryService, WireClient, wire_parity_mismatches
    from repro.simulation.config import SimulationConfig

    world = build_default_world(SimulationConfig.tiny())
    service = ServeService.for_world(world, max_reorg_depth=64)
    server = service.serve_wire()
    host, port = server.address

    stop = threading.Event()
    remotes = [
        RemoteQueryService(host, port)
        for _ in range(serve_profile["query_threads"])
    ]
    generators = [
        LoadGenerator(remote, seed=300 + slot, stop=stop, mirror=(slot == 0))
        for slot, remote in enumerate(remotes)
    ]
    for generator in generators:
        generator.thread.start()
    parity_client = WireClient(host, port).connect()

    rng = random.Random(4242)
    started = time.perf_counter()
    deadline = started + serve_profile["load_seconds"]
    tick = 0
    sampled = 0
    parity_problems = []
    while time.perf_counter() < deadline:
        if service.monitor.processed_block >= world.node.block_number:
            apply_random_reorg(
                world.chain, rng.randint(1, 10), rng, drop_probability=0.35
            )
        service.advance(
            min(
                world.node.block_number,
                service.monitor.processed_block + rng.randint(10, 60),
            )
        )
        tick += 1
        if tick % 2 == 0:
            # Full wire parity at a freshly pinned mid-storm version.
            parity_problems.extend(
                wire_parity_mismatches(
                    parity_client, service.query, server.lookup_version
                )
            )
            sampled += 1
    service.advance()  # settle the last revision
    parity_problems.extend(
        wire_parity_mismatches(parity_client, service.query, server.lookup_version)
    )
    sampled += 1

    # Let the replay mirror drain before freezing the readers.
    mirror_cursor = generators[0]._cursor
    drain_deadline = time.perf_counter() + 30
    while mirror_cursor.position < service.index.last_seq:
        assert time.perf_counter() < drain_deadline, "mirror cursor stalled"
        time.sleep(0.02)
    stop.set()
    for generator in generators:
        generator.thread.join(timeout=30)
        assert not generator.thread.is_alive()
    elapsed = time.perf_counter() - started

    total = sum(generator.queries for generator in generators)
    qps = total / elapsed if elapsed else float("inf")
    print(
        f"\n== wire load under live ingest == {total} queries from "
        f"{len(generators)} TCP readers in {elapsed:.2f}s ({qps:,.0f} q/s), "
        f"{tick} ticks, parity sampled at {sampled} pinned versions"
    )
    for generator in generators:
        assert generator.errors == [], generator.errors[:3]
    assert parity_problems == [], parity_problems[:5]
    assert total > 0

    final = service.query.version()
    assert final.confirmed_activity_count > 0
    assert +generators[0].mirror == Counter(
        record.key for record in final.confirmed
    )
    parity_client.close()
    for remote in remotes:
        remote.close()
    service.shutdown()


def test_wire_vs_in_process_throughput(serve_profile, wire_enabled):
    """One fixed mixed workload, both transports; report the overhead."""
    from repro.serve import RemoteQueryService, WireClient, wire_parity_mismatches

    world = build_default_world(serve_profile["preset"]())
    service = ServeService.for_world(world)
    service.run()
    server = service.serve_wire()
    remote = RemoteQueryService(*server.address)

    results = {}
    for label, query in (("in-process", service.query), ("wire", remote)):
        rng = random.Random(11)
        started = time.perf_counter()
        served = query_sweep(
            query,
            rng,
            serve_profile["aggregate_repeats"],
            serve_profile["point_queries"],
        )
        elapsed = time.perf_counter() - started
        results[label] = (served, elapsed)

    print(f"\n== wire vs in-process throughput == head={world.node.block_number}")
    for label, (served, elapsed) in results.items():
        qps = served / elapsed if elapsed else float("inf")
        print(f"  {label:<11} {served} queries in {elapsed:.3f}s ({qps:>10,.0f} q/s)")
    (in_served, in_elapsed) = results["in-process"]
    (wire_served, wire_elapsed) = results["wire"]
    overhead = (wire_elapsed / wire_served) / (in_elapsed / in_served)
    print(f"  per-query overhead factor over TCP: {overhead:.1f}x")

    # Same workload size both ways, and the wire serves the same truth.
    assert wire_served == in_served
    with WireClient(*server.address) as client:
        assert (
            wire_parity_mismatches(client, service.query, server.lookup_version)
            == []
        )
    remote.close()
    service.shutdown()
