"""Experiment F4 -- Fig. 4: CDF of wash trading activity lifetimes."""

from __future__ import annotations

from benchmarks.conftest import print_rows


def test_fig4_lifetime_cdf(benchmark, paper_report):
    lifetime = benchmark(paper_report.figure_lifetime_cdf)
    print_rows(
        "Fig. 4 - lifetime of wash trading activities",
        ["statistic", "value"],
        [
            ["activities <= 1 day", f"{lifetime.activities_within_one_day} ({lifetime.fraction_within_one_day:.1%})"],
            ["activities <= 10 days", f"{lifetime.activities_within_ten_days} ({lifetime.fraction_within_ten_days:.1%})"],
            ["CDF points", len(lifetime.points_days)],
        ],
    )
    # Shape checks (paper: ~33% within a day, >50% within ten days).
    assert lifetime.fraction_within_one_day > 0.15
    assert lifetime.fraction_within_ten_days > 0.45
