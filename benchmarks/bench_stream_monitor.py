"""Experiment S-stream -- streaming monitor vs naive prefix replay.

The pre-stream answer to Sec. IX was ``examples/marketplace_monitoring``
rebuilding the full dataset and re-running the whole pipeline on every
growing block prefix -- O(n^2) in chain length.  This benchmark drives
the :class:`~repro.stream.StreamingMonitor` and the naive replay over
the *same* tick boundaries and compares blocks/sec and per-tick latency;
``test_monitor_beats_prefix_replay`` is the acceptance check pinning the
incremental path as the faster watchdog (the gap widens with cadence:
replay pays the whole prefix again on every tick, the monitor only the
new blocks and the tokens they touched).

``test_reorg_rollback_beats_full_rebuild`` covers the reorg-heavy
scenario: the chain tail is repeatedly reorganized and the monitor's
journal rollback + re-ingest recovery is raced against what a
non-reorg-safe system would have to do -- throw its state away and
rebuild dataset + detection from scratch.  Pass ``--reorgs`` for the
heavier schedule (more rounds, deeper cuts).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_stream_monitor.py -q
    PYTHONPATH=src python -m pytest benchmarks/bench_stream_monitor.py --reorgs -q
"""

from __future__ import annotations

import random
import time

import pytest

from repro.core.detectors.pipeline import WashTradingPipeline
from repro.ingest.dataset import build_dataset
from repro.simulation.builder import build_default_world
from repro.simulation.config import SimulationConfig
from repro.simulation.reorg import apply_random_reorg
from repro.stream import StreamingMonitor

#: Monitoring cadence: both contenders tick at these shared boundaries.
WINDOW_COUNT = 24

WORLD_PRESETS = [
    ("tiny", SimulationConfig.tiny),
    ("small", SimulationConfig.small),
]


def tick_boundaries(head: int, windows: int = WINDOW_COUNT):
    """Evenly spaced inclusive upper blocks, always ending at the head."""
    return sorted({max(head * (window + 1) // windows, 0) for window in range(windows)})


def drive_monitor(world, boundaries):
    """Advance a fresh monitor through the boundaries; time each tick."""
    monitor = StreamingMonitor.for_world(world)
    latencies = []
    for upper in boundaries:
        started = time.perf_counter()
        monitor.advance(upper)
        latencies.append(time.perf_counter() - started)
    return monitor.result(), latencies


def drive_prefix_replay(world, boundaries):
    """Rebuild the dataset and re-run the pipeline at every boundary."""
    pipeline = WashTradingPipeline(
        labels=world.labels, is_contract=world.is_contract, engine="columnar"
    )
    latencies = []
    result = None
    for upper in boundaries:
        started = time.perf_counter()
        dataset = build_dataset(
            world.node, world.marketplace_addresses, to_block=upper
        )
        result = pipeline.run(dataset)
        latencies.append(time.perf_counter() - started)
    return result, latencies


def summarize(label, head, latencies):
    total = sum(latencies)
    rate = head / total if total > 0 else float("inf")
    print(
        f"  {label:<18} total={total:.3f}s blocks/s={rate:>10,.0f}"
        f" tick mean={total / len(latencies) * 1e3:7.2f}ms"
        f" max={max(latencies) * 1e3:7.2f}ms"
    )
    return total


@pytest.mark.parametrize(
    "label,config_factory", WORLD_PRESETS, ids=[name for name, _ in WORLD_PRESETS]
)
def test_monitor_beats_prefix_replay(label, config_factory):
    """Same cadence, same final answer -- the monitor must be faster."""
    world = build_default_world(config_factory())
    head = world.node.block_number
    boundaries = tick_boundaries(head)

    monitor_result, monitor_latencies = drive_monitor(world, boundaries)
    replay_result, replay_latencies = drive_prefix_replay(world, boundaries)

    print(f"\n== stream monitor vs prefix replay [{label}] == "
          f"head={head} ticks={len(boundaries)}")
    monitor_total = summarize("monitor", head, monitor_latencies)
    replay_total = summarize("prefix replay", head, replay_latencies)
    print(f"  speedup={replay_total / monitor_total:.2f}x")

    # Identical final verdicts at the head...
    assert monitor_result.activity_count == replay_result.activity_count
    assert monitor_result.refinement.stages == replay_result.refinement.stages
    assert monitor_result.activity_count > 0
    # ...and the incremental path wins the wall clock.
    assert monitor_total < replay_total


def test_reorg_rollback_beats_full_rebuild(reorg_profile):
    """Journal rollback recovery must beat cold dataset+detection rebuild.

    Each round reorganizes the chain tail (transactions dropped,
    delayed, occasionally a shortened branch), then times two recoveries
    to the new canonical head: the monitor's rollback + re-ingest, and
    the from-scratch ``build_dataset`` + columnar pipeline run a
    stateless system would need.  Both must agree on the verdicts; the
    rollback path must win the wall clock in total.
    """
    world = build_default_world(SimulationConfig.tiny())
    monitor = StreamingMonitor.for_world(world, max_reorg_depth=64)
    monitor.run(step_blocks=25)
    pipeline = WashTradingPipeline(
        labels=world.labels, is_contract=world.is_contract, engine="columnar"
    )
    rng = random.Random(20230227)

    rounds = reorg_profile["rounds"]
    depths = reorg_profile["depths"]
    rollback_latencies = []
    rebuild_latencies = []
    for round_index in range(rounds):
        depth = depths[round_index % len(depths)]
        apply_random_reorg(
            world.chain,
            depth,
            rng,
            drop_probability=0.35,
            delay_probability=0.25,
            shorten=1 if round_index % 3 == 2 else 0,
        )

        started = time.perf_counter()
        monitor.advance()
        rollback_latencies.append(time.perf_counter() - started)

        started = time.perf_counter()
        rebuilt = pipeline.run(
            build_dataset(world.node, world.marketplace_addresses)
        )
        rebuild_latencies.append(time.perf_counter() - started)

        streamed = monitor.result()
        assert streamed.activity_count == rebuilt.activity_count
        assert streamed.refinement.stages == rebuilt.refinement.stages

    rollback_total = sum(rollback_latencies)
    rebuild_total = sum(rebuild_latencies)
    print(
        f"\n== reorg recovery: rollback vs full rebuild [tiny] == "
        f"rounds={rounds} depths={depths}"
    )
    print(
        f"  rollback  total={rollback_total:.3f}s"
        f" mean={rollback_total / rounds * 1e3:7.2f}ms"
        f" max={max(rollback_latencies) * 1e3:7.2f}ms"
    )
    print(
        f"  rebuild   total={rebuild_total:.3f}s"
        f" mean={rebuild_total / rounds * 1e3:7.2f}ms"
        f" max={max(rebuild_latencies) * 1e3:7.2f}ms"
    )
    print(f"  speedup={rebuild_total / rollback_total:.2f}x")
    assert rollback_total < rebuild_total


def test_monitor_scales_with_cadence():
    """Doubling the cadence must not double the monitor's total cost.

    The naive replay is O(windows * chain); the monitor's total work is
    dominated by the one pass over the chain, so twice the ticks must
    stay well under twice the time.  Guarded loosely (3x headroom) to
    stay robust on noisy CI boxes.
    """
    world = build_default_world(SimulationConfig.tiny())
    head = world.node.block_number

    def total_time(windows):
        boundaries = tick_boundaries(head, windows)
        best = None
        for _ in range(3):
            _, latencies = drive_monitor(world, boundaries)
            total = sum(latencies)
            best = total if best is None else min(best, total)
        return best

    coarse = total_time(WINDOW_COUNT)
    fine = total_time(WINDOW_COUNT * 2)
    print(
        f"\n== monitor cadence scaling [tiny] == "
        f"{WINDOW_COUNT} ticks: {coarse:.3f}s, {WINDOW_COUNT * 2} ticks: {fine:.3f}s"
    )
    assert fine < coarse * 3
