"""Experiment S-scale -- end-to-end pipeline wall-clock scaling.

Every case runs the full detection pipeline (refinement + confirmation)
over a synthetic world, parametrized by world size *and* detection
backend -- the legacy networkx path, the serial columnar engine, the
process-pool engine, and the numpy/CSR kernel tier.  Select backends
with ``--backends``, e.g.::

    PYTHONPATH=src python -m pytest benchmarks/bench_pipeline_scaling.py \
        --backends legacy,engine,kernel -q

``--smoke`` caps the worlds at "small" with fewer rounds (the CI
kernel-smoke profile).  Two acceptance checks anchor the backend
ordering on the largest selected world:

* ``test_engine_beats_legacy_on_largest_world`` -- the columnar engine
  (including its store build) must outrun the legacy path;
* ``test_kernel_beats_engine_on_largest_world`` -- the kernel tier must
  outrun the columnar engine (2x is the target; the floor asserted is
  strictly faster), and the pure-Python fallback must never be slower
  than the columnar engine either.

With ``--obs``, ``test_obs_overhead_on_largest_world`` adds the
observability bar: a fully instrumented streaming ingest over the
largest selected world must stay within 5% of the bare run while
producing the identical detection result.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import BACKEND_PIPELINE_KWARGS, kernel_status
from repro.core.detectors.pipeline import WashTradingPipeline
from repro.serve import ServeService
from repro.ingest.dataset import build_dataset
from repro.simulation.builder import build_default_world
from repro.simulation.config import SimulationConfig

WORLD_CONFIGS = {
    "tiny": SimulationConfig.tiny,
    "small": SimulationConfig.small,
    "default": SimulationConfig,
}


def run_full_pipeline(world, dataset=None, **pipeline_kwargs):
    if dataset is None:
        dataset = build_dataset(world.node, world.marketplace_addresses)
    # Drop any cached columnar store so engine timings include its build.
    dataset._columnar_store = None
    pipeline = WashTradingPipeline(
        labels=world.labels, is_contract=world.is_contract, **pipeline_kwargs
    )
    return pipeline.run(dataset)


@pytest.mark.parametrize("label", ["tiny", "small", "default"])
def test_pipeline_scaling(benchmark, label, backend, scaling_profile):
    if label not in scaling_profile["worlds"]:
        pytest.skip(f"world '{label}' excluded by the --smoke profile")
    world = build_default_world(WORLD_CONFIGS[label]())
    dataset = build_dataset(world.node, world.marketplace_addresses)
    result = benchmark.pedantic(
        run_full_pipeline,
        args=(world,),
        kwargs={"dataset": dataset, **BACKEND_PIPELINE_KWARGS[backend]},
        iterations=1,
        rounds=scaling_profile["rounds"],
    )
    print(
        f"\n== pipeline scaling [{label}/{backend}] =="
        f" transfers={world.chain.transaction_count()}"
        f" candidates={result.candidate_count} activities={result.activity_count}"
        f" ({kernel_status()})"
    )
    assert result.activity_count > 0


def _best_of(rounds, world, dataset, **pipeline_kwargs):
    best = None
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = run_full_pipeline(world, dataset=dataset, **pipeline_kwargs)
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best, result


@pytest.fixture(scope="module")
def largest_world(scaling_profile):
    world = build_default_world(WORLD_CONFIGS[scaling_profile["largest"]]())
    dataset = build_dataset(world.node, world.marketplace_addresses)
    return scaling_profile["largest"], world, dataset


def test_engine_beats_legacy_on_largest_world(largest_world):
    """The columnar engine must outrun the legacy path at the largest scale."""
    label, world, dataset = largest_world
    legacy_best, legacy_result = _best_of(3, world, dataset, engine="legacy")
    engine_best, engine_result = _best_of(3, world, dataset, engine="columnar")

    print(
        f"\n== engine vs legacy [{label} world] == "
        f"legacy={legacy_best:.3f}s engine={engine_best:.3f}s "
        f"speedup={legacy_best / engine_best:.2f}x"
    )
    assert engine_result.activity_count == legacy_result.activity_count
    assert engine_best < legacy_best


def test_kernel_beats_engine_on_largest_world(largest_world):
    """The kernel tier must outrun the columnar engine; the fallback must
    at least match it.  Best-of-five per backend to damp machine noise."""
    from repro.engine.kernels import force_fallback

    label, world, dataset = largest_world
    engine_best, engine_result = _best_of(5, world, dataset, engine="columnar")
    kernel_best, kernel_result = _best_of(5, world, dataset, engine="kernel")
    with force_fallback():
        fallback_best, fallback_result = _best_of(
            5, world, dataset, engine="kernel"
        )

    print(
        f"\n== kernel vs engine [{label} world] == {kernel_status()}\n"
        f"engine={engine_best:.3f}s kernel={kernel_best:.3f}s "
        f"fallback={fallback_best:.3f}s | "
        f"kernel speedup={engine_best / kernel_best:.2f}x (target 2x), "
        f"fallback={engine_best / fallback_best:.2f}x"
    )
    assert kernel_result.activity_count == engine_result.activity_count
    assert fallback_result.activity_count == engine_result.activity_count
    assert kernel_best < engine_best
    assert fallback_best < engine_best


def _stream_best_of(rounds, world, registry_factory, configure=None):
    """Best-of-``rounds`` full streaming ingest over ``world``'s chain.

    ``configure(service, registry)`` runs before each timed ingest --
    the hook the instrumented variant uses to attach its SLO engine.
    """
    import time as _time

    best = None
    result = None
    registry = None
    for _ in range(rounds):
        registry = registry_factory()
        service = ServeService.for_world(world, registry=registry)
        if configure is not None:
            configure(service, registry)
        started = _time.perf_counter()
        service.run()
        elapsed = _time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
        result = service.result()
    return best, result, registry


def test_obs_overhead_on_largest_world(largest_world, obs_enabled):
    """Instrumentation must cost <5% of ingest at the largest scale.

    The observability overhead bar: a full streaming ingest (cursor ->
    scheduler -> monitor -> serving index, every layer carrying its
    counters and spans, plus the ISSUE 9 layers -- per-tick trace
    minting and context, the alert-latency ledger, and a live SLO
    engine evaluating a latency and an error-rate objective every tick)
    over the largest selected world must stay within 5% of the
    identical uninstrumented run -- and must produce the identical
    detection result.  Best-of-five per variant to damp machine noise.
    """
    from repro.obs import (
        MetricsRegistry,
        SLOEngine,
        latency_objective,
        wire_error_objective,
    )

    def attach_slo(service, registry):
        service.attach_slo(
            SLOEngine(
                registry,
                [
                    latency_objective(0.25, stage="detect"),
                    wire_error_objective(0.01),
                ],
            )
        )

    label, world, _ = largest_world
    bare_best, bare_result, _ = _stream_best_of(5, world, lambda: None)
    obs_best, obs_result, registry = _stream_best_of(
        5, world, MetricsRegistry, configure=attach_slo
    )

    overhead = obs_best / bare_best - 1.0
    snapshot = registry.snapshot()
    blocks = snapshot["counters"]["cursor_blocks_ingested_total"]
    ticks = snapshot["counters"]["monitor_ticks_total"]
    tick_spans = snapshot["histograms"]['span_seconds{span="tick"}']["count"]
    detect_latency = snapshot["histograms"][
        'alert_latency_seconds{stage="detect"}'
    ]
    print(
        f"\n== obs overhead [{label} world] == "
        f"bare={bare_best:.3f}s instrumented={obs_best:.3f}s "
        f"({overhead * 100:+.2f}%, bar +5%)\n"
        f"  instrumented run saw {blocks} blocks, {ticks} ticks, "
        f"{tick_spans} tick spans, detect-stage latency "
        f"p95={detect_latency['p95'] * 1e3:.2f}ms "
        f"over {int(detect_latency['count'])} traces"
    )
    assert obs_result.activity_count == bare_result.activity_count
    assert obs_result.candidate_count == bare_result.candidate_count
    assert snapshot["counters"]["monitor_ticks_total"] > 0
    # The new layers really ran: every tick left a trace in the ledger
    # and the SLO gauges were evaluated.
    assert detect_latency["count"] == ticks
    assert snapshot["gauges"]['slo_healthy{slo="alert-latency-detect-p95"}'] in (
        0,
        1,
    )
    assert overhead < 0.05, (
        f"instrumentation cost {overhead:.1%} of ingest on the {label} "
        f"world; the observability bar is <5%"
    )
