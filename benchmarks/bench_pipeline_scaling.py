"""Experiment S-scale -- end-to-end pipeline wall-clock scaling.

Every case runs the full detection pipeline (refinement + confirmation)
over a synthetic world, parametrized by world size *and* detection
backend -- the legacy networkx path, the serial columnar engine, and the
process-pool engine.  Select backends with ``--backends``, e.g.::

    PYTHONPATH=src python -m pytest benchmarks/bench_pipeline_scaling.py \
        --backends legacy,engine -q

``test_engine_beats_legacy_on_default_world`` is the acceptance check
for the engine: best-of-three wall clock on the largest simulated world,
columnar engine (including its store build) vs. the legacy path.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import BACKEND_PIPELINE_KWARGS
from repro.core.detectors.pipeline import WashTradingPipeline
from repro.ingest.dataset import build_dataset
from repro.simulation.builder import build_default_world
from repro.simulation.config import SimulationConfig


def run_full_pipeline(world, dataset=None, **pipeline_kwargs):
    if dataset is None:
        dataset = build_dataset(world.node, world.marketplace_addresses)
    # Drop any cached columnar store so engine timings include its build.
    dataset._columnar_store = None
    pipeline = WashTradingPipeline(
        labels=world.labels, is_contract=world.is_contract, **pipeline_kwargs
    )
    return pipeline.run(dataset)


@pytest.mark.parametrize(
    "label,config",
    [
        ("tiny", SimulationConfig.tiny()),
        ("small", SimulationConfig.small()),
        ("default", SimulationConfig()),
    ],
    ids=["tiny", "small", "default"],
)
def test_pipeline_scaling(benchmark, label, config, backend):
    world = build_default_world(config)
    dataset = build_dataset(world.node, world.marketplace_addresses)
    result = benchmark.pedantic(
        run_full_pipeline,
        args=(world,),
        kwargs={"dataset": dataset, **BACKEND_PIPELINE_KWARGS[backend]},
        iterations=1,
        rounds=3,
    )
    print(
        f"\n== pipeline scaling [{label}/{backend}] =="
        f" transfers={world.chain.transaction_count()}"
        f" candidates={result.candidate_count} activities={result.activity_count}"
    )
    assert result.activity_count > 0


def _best_of(rounds, world, dataset, **pipeline_kwargs):
    best = None
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = run_full_pipeline(world, dataset=dataset, **pipeline_kwargs)
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def test_engine_beats_legacy_on_default_world():
    """The columnar engine must outrun the legacy path at the largest scale."""
    world = build_default_world(SimulationConfig())
    dataset = build_dataset(world.node, world.marketplace_addresses)

    legacy_best, legacy_result = _best_of(3, world, dataset, engine="legacy")
    engine_best, engine_result = _best_of(3, world, dataset, engine="columnar")

    print(
        f"\n== engine vs legacy [default world] == "
        f"legacy={legacy_best:.3f}s engine={engine_best:.3f}s "
        f"speedup={legacy_best / engine_best:.2f}x"
    )
    assert engine_result.activity_count == legacy_result.activity_count
    assert engine_best < legacy_best
