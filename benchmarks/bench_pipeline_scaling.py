"""Experiment S-scale -- end-to-end pipeline wall-clock scaling."""

from __future__ import annotations

import pytest

from repro.core.detectors.pipeline import WashTradingPipeline
from repro.ingest.dataset import build_dataset
from repro.simulation.builder import build_default_world
from repro.simulation.config import SimulationConfig


def run_full_pipeline(world):
    dataset = build_dataset(world.node, world.marketplace_addresses)
    pipeline = WashTradingPipeline(labels=world.labels, is_contract=world.is_contract)
    return pipeline.run(dataset)


@pytest.mark.parametrize(
    "label,config",
    [
        ("tiny", SimulationConfig.tiny()),
        ("small", SimulationConfig.small()),
        ("default", SimulationConfig()),
    ],
    ids=["tiny", "small", "default"],
)
def test_pipeline_scaling(benchmark, label, config):
    world = build_default_world(config)
    result = benchmark.pedantic(run_full_pipeline, args=(world,), iterations=1, rounds=3)
    print(
        f"\n== pipeline scaling [{label}] == transfers={world.chain.transaction_count()}"
        f" candidates={result.candidate_count} activities={result.activity_count}"
    )
    assert result.activity_count > 0
