"""Experiment S-funnel -- the candidate refinement funnel (Sec. IV-A/B)."""

from __future__ import annotations

from benchmarks.conftest import print_rows


def test_funnel_refinement(benchmark, paper_report):
    rows = benchmark(paper_report.funnel)
    print_rows(
        "Refinement funnel (Sec. IV-A/B)",
        ["stage", "NFTs with component", "components", "accounts"],
        [[row.stage, row.nft_count, row.component_count, row.account_count] for row in rows],
    )
    nft_counts = [row.nft_count for row in rows]
    # Shape checks: each refinement stage narrows the candidate set and the
    # zero-volume filter is the biggest single cut after the raw search.
    assert nft_counts == sorted(nft_counts, reverse=True)
    assert nft_counts[0] > nft_counts[-1] > 0
