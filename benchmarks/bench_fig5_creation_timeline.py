"""Experiment F5 -- Fig. 5: wash events vs collection creation dates."""

from __future__ import annotations

from benchmarks.conftest import print_rows
from repro.core.characterization.temporal import creation_proximity
from repro.utils.timeutil import format_day


def test_fig5_creation_timeline(benchmark, paper_world, paper_report):
    timeline = benchmark(paper_report.figure_creation_timeline)
    print_rows(
        "Fig. 5 - top collections: creation date and wash events",
        ["collection", "created", "washed NFTs", "first event", "last event"],
        [
            [
                row.name,
                format_day(row.creation_timestamp),
                row.washed_nft_count,
                format_day(row.activity_timestamps[0]),
                format_day(row.activity_timestamps[-1]),
            ]
            for row in timeline
        ],
    )
    assert 0 < len(timeline) <= 10
    # Shape check: the bulk of wash activity starts within a month of the
    # targeted collection's creation.
    proximities = creation_proximity(
        paper_report.result, paper_world.collection_creation_timestamps()
    )
    near = sum(1 for days in proximities if days <= 30)
    assert near / len(proximities) > 0.6
