"""Experiment T2 -- Table II: wash trading per marketplace."""

from __future__ import annotations

from benchmarks.conftest import print_rows


def test_table2_wash_volume(benchmark, paper_report):
    rows = benchmark(paper_report.table_two)
    print_rows(
        "Table II - wash trading on NFTMs",
        ["NFTM", "#NFT", "Volume ($)", "Share of venue volume"],
        [
            [
                row.marketplace,
                row.washed_nft_count,
                f"{row.wash_volume_usd:,.0f}",
                f"{row.share_of_marketplace_volume:.2%}",
            ]
            for row in rows
        ],
    )
    by_name = {row.marketplace: row for row in rows}
    total = sum(row.wash_volume_usd for row in rows)
    # Shape checks from the paper: LooksRare carries almost all wash volume
    # and most of its own volume is artificial; OpenSea hosts the most
    # operations at a tiny share; Foundation shows none.
    assert by_name["LooksRare"].wash_volume_usd / total > 0.8
    assert by_name["LooksRare"].share_of_marketplace_volume > 0.5
    assert by_name["OpenSea"].washed_nft_count == max(row.washed_nft_count for row in rows)
    assert by_name["Foundation"].washed_nft_count == 0
