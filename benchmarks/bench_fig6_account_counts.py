"""Experiment F6 -- Fig. 6: number of accounts involved in activities."""

from __future__ import annotations

from benchmarks.conftest import print_rows


def test_fig6_account_counts(benchmark, paper_report):
    figure = benchmark(paper_report.figure_account_counts)
    print_rows(
        "Fig. 6 - accounts per wash trading activity",
        ["accounts", "activities", "fraction"],
        [
            [key, figure.counts[key], f"{figure.fractions[key]:.1%}"]
            for key in figure.counts
        ],
    )
    # Shape checks (paper: ~60% two accounts, ~7.6% single-account self-trades).
    assert figure.fractions["2"] > 0.4
    assert figure.fractions["2"] == max(figure.fractions.values())
    assert 0 < figure.fractions["1"] < 0.2
