"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures from
the same default synthetic world (seed 42).  The world and the pipeline
run are session-scoped so each benchmark times only the analysis it is
about; ``bench_pipeline_scaling`` builds its own smaller worlds.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import PaperReport
from repro.simulation.builder import build_default_world
from repro.simulation.config import SimulationConfig

#: Detection backends the backend-parametrized benchmarks can compare.
#: "legacy" is the networkx reference path, "engine" the serial columnar
#: engine, "engine-mp" the columnar engine on a 4-worker process pool,
#: "kernel" the numpy/CSR tier (compiled Tarjan when available).
ALL_BACKENDS = ("legacy", "engine", "engine-mp", "kernel")

BACKEND_PIPELINE_KWARGS = {
    "legacy": {"engine": "legacy"},
    "engine": {"engine": "columnar"},
    "engine-mp": {"engine": "columnar", "workers": 4},
    "kernel": {"engine": "kernel"},
}


def kernel_status() -> str:
    """One line describing the kernel tier this process will run with."""
    try:
        import numpy
    except ImportError:
        return "kernel tier: unavailable (no numpy)"
    from repro.engine.kernels import active_backend

    return (
        f"kernel tier: numpy {numpy.__version__}, "
        f"tarjan backend: {active_backend()}"
    )


def pytest_report_header(config):
    """Record backend/kernel availability and world scale up front.

    Benchmark numbers are meaningless without knowing whether the
    compiled Tarjan actually loaded and how big the simulated worlds
    are, so both are pinned into the run header.
    """
    scales = ", ".join(
        f"{name}={preset().duration_days}d x {preset().legit_sales_per_day}/day"
        for name, preset in (
            ("tiny", SimulationConfig.tiny),
            ("small", SimulationConfig.small),
            ("default", SimulationConfig),
        )
    )
    return [kernel_status(), f"world scale: {scales}"]


def pytest_addoption(parser):
    parser.addoption(
        "--backends",
        default=",".join(ALL_BACKENDS),
        help=(
            "comma-separated detection backends to benchmark "
            f"(subset of {','.join(ALL_BACKENDS)}; default: all)"
        ),
    )
    parser.addoption(
        "--reorgs",
        action="store_true",
        help=(
            "run the reorg-recovery benchmark with a heavier reorg schedule "
            "(more rounds, deeper cuts) instead of the default smoke profile"
        ),
    )
    parser.addoption(
        "--smoke",
        action="store_true",
        help=(
            "shrink the heavy benchmarks to CI-sized workloads: "
            "bench_serve_load runs a tiny world with fewer query "
            "repetitions, bench_pipeline_scaling caps worlds at 'small' "
            "and runs fewer rounds"
        ),
    )
    parser.addoption(
        "--shards",
        default="1,2,4",
        help=(
            "comma-separated shard counts for bench_serve_load's "
            "scatter-gather comparison column (ascending, starting at "
            "1 -- the single-index baseline; default: 1,2,4)"
        ),
    )
    parser.addoption(
        "--wire",
        action="store_true",
        help=(
            "also run the over-the-wire serving benchmarks "
            "(bench_serve_load): TCP reader fleet against live ingest "
            "with parity sampled at pinned versions, and the "
            "wire-vs-in-process throughput comparison"
        ),
    )
    parser.addoption(
        "--obs",
        action="store_true",
        help=(
            "also run the observability overhead comparisons: the same "
            "streaming/serving workload instrumented (metrics registry "
            "+ spans) vs bare, asserting identical answers and, on the "
            "largest scaling world, <5% ingest overhead"
        ),
    )


@pytest.fixture
def reorg_profile(request):
    """Reorg schedule for ``bench_stream_monitor``'s recovery benchmark."""
    if request.config.getoption("--reorgs"):
        return {"rounds": 12, "depths": (1, 3, 8, 21, 55)}
    return {"rounds": 4, "depths": (2, 8, 21)}


@pytest.fixture
def wire_enabled(request):
    """Gate for the over-the-wire serving benchmarks (``--wire``)."""
    if not request.config.getoption("--wire"):
        pytest.skip("pass --wire to run the over-the-wire serving benchmarks")


@pytest.fixture
def obs_enabled(request):
    """Gate for the observability overhead comparisons (``--obs``)."""
    if not request.config.getoption("--obs"):
        pytest.skip("pass --obs to run the observability overhead comparisons")


@pytest.fixture(scope="session")
def scaling_profile(request):
    """World sizing for ``bench_pipeline_scaling`` (``--smoke`` shrinks it).

    ``largest`` names the world the backend acceptance checks run on;
    the smoke profile keeps CI inside a small world and fewer rounds.
    """
    if request.config.getoption("--smoke"):
        return {"worlds": ("tiny", "small"), "largest": "small", "rounds": 2}
    return {"worlds": ("tiny", "small", "default"), "largest": "default", "rounds": 3}


@pytest.fixture
def serve_profile(request):
    """Workload sizing for ``bench_serve_load`` (``--smoke`` shrinks it)."""
    if request.config.getoption("--smoke"):
        return {
            "preset": SimulationConfig.tiny,
            "aggregate_repeats": 6,
            "point_queries": 40,
            "query_threads": 2,
            "reorg_every": 3,
            "load_seconds": 0.4,
            "shard_ticks": 12,
            "smoke": True,
        }
    return {
        "preset": SimulationConfig.small,
        "aggregate_repeats": 12,
        "point_queries": 120,
        "query_threads": 4,
        "reorg_every": 3,
        "load_seconds": 1.5,
        "shard_ticks": 48,
        "smoke": False,
    }


@pytest.fixture
def shard_counts(request):
    """Shard counts for the scatter-gather comparison (``--shards``)."""
    raw = request.config.getoption("--shards")
    counts = tuple(int(part) for part in raw.split(",") if part.strip())
    if (
        not counts
        or counts[0] != 1
        or list(counts) != sorted(set(counts))
    ):
        raise pytest.UsageError(
            f"--shards must be an ascending list starting at 1, got {raw!r}"
        )
    return counts


def pytest_generate_tests(metafunc):
    if "backend" in metafunc.fixturenames:
        selected = [
            name.strip()
            for name in metafunc.config.getoption("--backends").split(",")
            if name.strip()
        ]
        unknown = [name for name in selected if name not in ALL_BACKENDS]
        if unknown:
            raise pytest.UsageError(
                f"unknown --backends entries {unknown}; expected {ALL_BACKENDS}"
            )
        metafunc.parametrize("backend", selected, ids=selected)


@pytest.fixture(scope="session")
def paper_world():
    """The default calibrated world used by every per-artifact benchmark."""
    return build_default_world(SimulationConfig())


@pytest.fixture(scope="session")
def paper_report(paper_world):
    """A cached full pipeline run over the default world."""
    report = PaperReport(paper_world)
    report.run()
    return report


def print_rows(title, headers, rows):
    """Print a regenerated artifact so it can be compared with the paper."""
    from repro.analysis.tables import format_table

    print()
    print(f"== {title} ==")
    print(format_table(headers, rows))
