"""Ablation A1 -- value of each refinement step (DESIGN.md, Sec. 6)."""

from __future__ import annotations

from benchmarks.conftest import print_rows
from repro.core.detectors.pipeline import WashTradingPipeline
from repro.core.refine import RefinementFunnel


def run_with_flags(world, dataset, **flags):
    funnel = RefinementFunnel(world.labels, world.is_contract, **flags)
    pipeline = WashTradingPipeline(
        labels=world.labels, is_contract=world.is_contract, funnel=funnel
    )
    return pipeline.run(dataset)


def test_ablation_refinement(benchmark, paper_world, paper_report):
    dataset = paper_report.dataset

    def ablate_all():
        return run_with_flags(
            paper_world,
            dataset,
            skip_service_removal=True,
            skip_contract_removal=True,
            skip_zero_volume_removal=True,
        )

    no_refinement = benchmark(ablate_all)
    full = paper_report.result
    no_services = run_with_flags(paper_world, dataset, skip_service_removal=True)
    no_zero_volume = run_with_flags(paper_world, dataset, skip_zero_volume_removal=True)

    print_rows(
        "Ablation: refinement steps",
        ["variant", "candidates", "confirmed activities"],
        [
            ["full refinement (paper)", full.candidate_count, full.activity_count],
            ["no service-account removal", no_services.candidate_count, no_services.activity_count],
            ["no zero-volume removal", no_zero_volume.candidate_count, no_zero_volume.activity_count],
            ["no refinement at all", no_refinement.candidate_count, no_refinement.activity_count],
        ],
    )
    # Each disabled step inflates the candidate set the detectors must face.
    assert no_refinement.candidate_count > full.candidate_count
    assert no_zero_volume.candidate_count > full.candidate_count
    assert no_services.candidate_count >= full.candidate_count
