"""Ablation tests for the design choices called out in DESIGN.md."""

from __future__ import annotations

import pytest

from repro.core.detectors.base import DetectionConfig
from repro.core.detectors.pipeline import WashTradingPipeline
from repro.core.refine import RefinementFunnel
from repro.core.activity import DetectionMethod


def run_with_funnel(world, **funnel_kwargs):
    funnel = RefinementFunnel(world.labels, world.is_contract, **funnel_kwargs)
    pipeline = WashTradingPipeline(
        labels=world.labels, is_contract=world.is_contract, funnel=funnel
    )
    from repro.ingest.dataset import build_dataset

    dataset = build_dataset(world.node, world.marketplace_addresses)
    return pipeline.run(dataset)


class TestRefinementAblation:
    def test_skipping_service_removal_inflates_candidates(self, tiny_world, tiny_report):
        ablated = run_with_funnel(tiny_world, skip_service_removal=True)
        assert ablated.candidate_count >= tiny_report.result.candidate_count

    def test_skipping_zero_volume_removal_inflates_candidates(self, tiny_world, tiny_report):
        ablated = run_with_funnel(tiny_world, skip_zero_volume_removal=True)
        assert ablated.candidate_count > tiny_report.result.candidate_count

    def test_skipping_contract_removal_never_reduces_candidates(self, tiny_world, tiny_report):
        ablated = run_with_funnel(tiny_world, skip_contract_removal=True)
        assert ablated.candidate_count >= tiny_report.result.candidate_count

    def test_planted_negatives_stay_out_only_with_full_refinement(self, tiny_world):
        ablated = run_with_funnel(
            tiny_world,
            skip_service_removal=True,
            skip_contract_removal=True,
            skip_zero_volume_removal=True,
        )
        negatives = {item.nft for item in tiny_world.ground_truth.planted_negatives()}
        candidate_nfts = {component.nft for component in ablated.refinement.candidates}
        assert negatives & candidate_nfts  # without refinement, noise becomes candidates


class TestDetectorAblation:
    def test_each_method_contributes(self, small_world, small_report):
        """Removing any single confirmation technique loses activities
        unless another technique also covers them; the union is maximal."""
        from repro.ingest.dataset import build_dataset

        dataset = small_report.dataset
        full_count = small_report.result.activity_count
        for removed in (DetectionMethod.COMMON_FUNDER, DetectionMethod.COMMON_EXIT):
            remaining = set(DetectionMethod.paper_methods()) - {removed}
            pipeline = WashTradingPipeline(
                labels=small_world.labels,
                is_contract=small_world.is_contract,
                enabled_methods=remaining,
            )
            result = pipeline.run(dataset)
            assert result.activity_count <= full_count

    def test_funder_and_exit_cover_most_activities(self, small_world, small_report):
        pipeline = WashTradingPipeline(
            labels=small_world.labels,
            is_contract=small_world.is_contract,
            enabled_methods={DetectionMethod.COMMON_FUNDER, DetectionMethod.COMMON_EXIT},
        )
        result = pipeline.run(small_report.dataset)
        assert result.activity_count / small_report.result.activity_count > 0.7

    def test_zero_risk_alone_is_weak(self, small_world, small_report):
        pipeline = WashTradingPipeline(
            labels=small_world.labels,
            is_contract=small_world.is_contract,
            enabled_methods={DetectionMethod.ZERO_RISK},
        )
        result = pipeline.run(small_report.dataset)
        assert result.activity_count < small_report.result.activity_count / 2


class TestZeroRiskToleranceAblation:
    def test_widening_tolerance_confirms_more_by_zero_risk(self, small_world, small_report):
        strict = small_report.result.count_by_method().get(DetectionMethod.ZERO_RISK, 0)
        lax_pipeline = WashTradingPipeline(
            labels=small_world.labels,
            is_contract=small_world.is_contract,
            config=DetectionConfig(zero_risk_relative_tolerance=0.1),
        )
        lax = lax_pipeline.run(small_report.dataset).count_by_method().get(DetectionMethod.ZERO_RISK, 0)
        assert lax >= strict
