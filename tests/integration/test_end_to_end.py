"""End-to-end tests: world -> dataset -> detection vs ground truth."""

from __future__ import annotations

import pytest

from repro.core.activity import DetectionMethod
from repro.simulation.ground_truth import (
    KIND_P2P_WASH,
    KIND_RARITY_GAME,
    KIND_REWARD_FARM,
    KIND_SELF_TRADE,
)


class TestDetectionAgainstGroundTruth:
    def test_recall_on_planted_activities(self, small_world, small_report):
        score = small_world.ground_truth.match_against(small_report.result.washed_nfts())
        assert score.recall >= 0.9

    def test_no_planted_negative_leaks_through(self, small_world, small_report):
        score = small_world.ground_truth.match_against(small_report.result.washed_nfts())
        assert score.leaked_planted_negatives == 0

    def test_no_false_positives_on_legit_nfts(self, small_world, small_report):
        planted_nfts = {item.nft for item in small_world.ground_truth.activities}
        false_positives = small_report.result.washed_nfts() - planted_nfts
        assert not false_positives

    def test_reward_farms_detected_on_their_venue(self, small_world, small_report):
        farms = {
            item.nft
            for item in small_world.ground_truth.of_kind(KIND_REWARD_FARM)
            if item.venue == "LooksRare"
        }
        detected_on_looksrare = {
            activity.nft for activity in small_report.result.activities_on("LooksRare")
        }
        assert farms
        assert len(farms & detected_on_looksrare) / len(farms) >= 0.8

    def test_self_trades_confirmed_by_self_trade_method(self, small_world, small_report):
        planted = {item.nft for item in small_world.ground_truth.of_kind(KIND_SELF_TRADE)}
        confirmed = {
            activity.nft
            for activity in small_report.result.activities
            if activity.detected_by(DetectionMethod.SELF_TRADE)
        }
        assert planted
        assert planted <= confirmed

    def test_zero_risk_method_fires_on_otc_washes(self, small_world, small_report):
        planted_zero_risk = {
            item.nft
            for item in small_world.ground_truth.of_kind(KIND_P2P_WASH)
            if item.metadata.get("zero_risk")
        }
        if not planted_zero_risk:
            pytest.skip("no zero-risk P2P wash planted in this seed")
        confirmed_zero_risk = {
            activity.nft
            for activity in small_report.result.activities
            if activity.detected_by(DetectionMethod.ZERO_RISK)
        }
        assert planted_zero_risk & confirmed_zero_risk

    def test_rarity_games_detected(self, small_world, small_report):
        from repro.core.profitability.case_studies import find_rarity_games

        planted = small_world.ground_truth.of_kind(KIND_RARITY_GAME)
        cases = find_rarity_games(small_report.result)
        assert planted
        assert cases

    def test_funnel_strictly_narrows(self, small_report):
        stages = small_report.result.refinement.stages
        nft_counts = [stage.nft_count for stage in stages]
        assert nft_counts[0] > nft_counts[-1]
        assert nft_counts == sorted(nft_counts, reverse=True)

    def test_most_activities_confirmed_by_multiple_methods(self, small_report):
        result = small_report.result
        assert result.confirmed_by_at_least(2) / max(result.activity_count, 1) > 0.5


class TestProfitabilityEndToEnd:
    def test_reward_farming_is_mostly_profitable(self, small_report):
        profitability = small_report.reward_profitability()
        looks = profitability["LooksRare"]
        assert looks.outcomes
        assert looks.success_rate > 0.6
        assert looks.gain_stats_usd(successful=True)["mean"] > 0

    def test_reward_gains_dwarf_losses(self, small_report):
        looks = small_report.reward_profitability()["LooksRare"]
        gains = looks.gain_stats_usd(successful=True)
        losses = looks.gain_stats_usd(successful=False)
        assert gains["total"] > abs(losses["total"])

    def test_resale_success_is_roughly_even(self, small_report):
        resale = small_report.resale_profitability()
        sold = resale.sold
        if len(sold) < 5:
            pytest.skip("too few resales in this seed to be meaningful")
        assert 0.2 <= resale.success_rate_net() <= 0.85

    def test_some_nfts_are_never_resold(self, small_report):
        resale = small_report.resale_profitability()
        assert resale.unsold_count > 0
