"""Qualitative acceptance tests: the paper's headline findings must hold
in shape on the generated world (see DESIGN.md, experiment index)."""

from __future__ import annotations

import pytest


class TestTableShapes:
    def test_opensea_leads_nft_and_transaction_counts(self, small_report):
        """Table I: OpenSea is the busiest venue by NFTs and transactions."""
        rows = {row.marketplace: row for row in small_report.table_one()}
        opensea = rows["OpenSea"]
        for name, row in rows.items():
            if name == "OpenSea":
                continue
            assert opensea.nft_count >= row.nft_count
            assert opensea.transaction_count >= row.transaction_count

    def test_looksrare_dominates_wash_volume(self, small_report):
        """Table II: LooksRare carries the overwhelming majority of wash volume."""
        rows = {row.marketplace: row for row in small_report.table_two()}
        total = sum(row.wash_volume_usd for row in rows.values())
        assert total > 0
        assert rows["LooksRare"].wash_volume_usd / total > 0.8

    def test_looksrare_wash_share_of_its_own_volume_is_high(self, small_report):
        rows = {row.marketplace: row for row in small_report.table_two()}
        assert rows["LooksRare"].share_of_marketplace_volume > 0.5

    def test_opensea_has_most_wash_operations_but_small_share(self, small_report):
        rows = {row.marketplace: row for row in small_report.table_two()}
        others = [row for name, row in rows.items() if name != "OpenSea"]
        assert rows["OpenSea"].washed_nft_count >= max(row.washed_nft_count for row in others)
        assert rows["OpenSea"].share_of_marketplace_volume < rows["LooksRare"].share_of_marketplace_volume

    def test_foundation_has_no_wash_trading(self, small_report):
        """The 15% fee keeps wash trading off Foundation entirely."""
        rows = {row.marketplace: row for row in small_report.table_two()}
        assert rows["Foundation"].washed_nft_count == 0
        assert rows["Foundation"].wash_volume_usd == 0

    def test_reward_exploitation_beats_resale(self, small_report):
        """Sec. VI: farming rewards succeeds far more often than resale pumping."""
        looks = small_report.reward_profitability()["LooksRare"]
        resale = small_report.resale_profitability()
        if not resale.sold:
            pytest.skip("no resales in this seed")
        assert looks.success_rate > resale.success_rate_net()


class TestFigureShapes:
    def test_two_account_round_trip_dominates(self, small_report):
        """Fig. 6/7: ~60% of activities use exactly two accounts."""
        fractions = small_report.figure_account_counts().fractions
        assert fractions["2"] > 0.4
        assert fractions["2"] == max(fractions.values())
        patterns = small_report.figure_patterns()
        assert patterns.get("pattern-1", 0) == max(patterns.values())

    def test_lifetimes_are_short(self, small_report):
        """Fig. 4: a large share of activities lasts at most a day, most at most ten."""
        lifetime = small_report.figure_lifetime_cdf()
        assert lifetime.fraction_within_one_day > 0.15
        assert lifetime.fraction_within_ten_days > 0.45
        assert lifetime.fraction_within_ten_days >= lifetime.fraction_within_one_day

    def test_wash_activities_cluster_near_collection_creation(self, small_world, small_report):
        """Fig. 5: wash events happen close to the creation of the collection."""
        from repro.core.characterization.temporal import creation_proximity

        proximities = creation_proximity(
            small_report.result, small_world.collection_creation_timestamps()
        )
        assert proximities
        near = sum(1 for days in proximities if days <= 30)
        assert near / len(proximities) > 0.6

    def test_wash_volumes_exceed_legit_volumes(self, small_report):
        """Fig. 3: wash activities move far more volume than ordinary NFTs."""
        series = {item.label: item.points for item in small_report.figure_volume_cdf()}
        legit = series.pop("Volume w/o wash trading")
        legit_median = legit[len(legit) // 2][0]
        looksrare = series.get("LooksRare")
        if not looksrare:
            pytest.skip("no LooksRare wash series in this seed")
        looksrare_median = looksrare[len(looksrare) // 2][0]
        assert looksrare_median > legit_median

    def test_funder_exit_overlap_is_largest_venn_region(self, small_report):
        """Fig. 2: funder+exit is the most common confirmation combination."""
        venn = small_report.figure_venn()
        assert venn
        largest = max(venn, key=venn.get)
        assert "common-funder" in largest and "common-exit" in largest

    def test_serial_minority_does_majority_of_activities(self, small_report):
        """Sec. V-D: a minority of accounts takes part in most activities."""
        serial = small_report.serial_traders()
        assert serial.serial_account_fraction < 0.5
        assert serial.serial_activity_fraction > 0.5
