"""Hand-scripted micro-worlds for unit tests.

Detector and profitability unit tests need precisely shaped on-chain
histories (a specific funder topology, an exact payment cycle) rather
than the statistical soup the full generator produces.  ``MicroWorld``
wires together a chain, the six marketplaces, exchanges and a trading
kit so a test can script those histories in a few lines and then run the
real ingest + pipeline over them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.chain.chain import Chain
from repro.chain.node import EthereumNode
from repro.contracts.erc721 import ERC721Collection
from repro.contracts.registry import ContractRegistry
from repro.core.detectors.base import DetectionConfig
from repro.core.detectors.pipeline import PipelineResult, WashTradingPipeline
from repro.core.profitability.context import MarketContext
from repro.ingest.dataset import NFTDataset, build_dataset
from repro.marketplaces.venues import build_standard_marketplaces
from repro.services.defi import OTCSwapDesk
from repro.services.exchanges import CentralizedExchange
from repro.services.labels import LabelRegistry
from repro.services.oracle import PriceOracle
from repro.simulation.actors import TradingKit
from repro.simulation.timeline import TimeAllocator
from repro.utils.currency import eth_to_wei
from repro.utils.rng import DeterministicRNG
from repro.utils.timeutil import SIMULATION_EPOCH


@dataclass
class MicroWorld:
    """A tiny hand-driven world for scripting exact on-chain histories."""

    chain: Chain
    node: EthereumNode
    labels: LabelRegistry
    registry: ContractRegistry
    oracle: PriceOracle
    kit: TradingKit
    marketplaces: object
    exchange: CentralizedExchange
    collection: ERC721Collection
    collection_address: str
    accounts: Dict[str, str] = field(default_factory=dict)

    # -- accounts ---------------------------------------------------------------
    def account(self, name: str, funded_eth: float = 0.0, day: int = 0) -> str:
        """Get-or-create a named EOA, optionally funding it from the exchange."""
        if name not in self.accounts:
            self.accounts[name] = self.kit.new_account(name)
            if funded_eth > 0:
                self.exchange.withdraw_to(
                    self.accounts[name],
                    eth_to_wei(funded_eth),
                    self.kit.clock.next_timestamp(day),
                )
        return self.accounts[name]

    def fund(self, name: str, amount_eth: float, day: int = 0) -> None:
        """Fund a named account from the exchange hot wallet."""
        self.exchange.withdraw_to(
            self.account(name), eth_to_wei(amount_eth), self.kit.clock.next_timestamp(day)
        )

    # -- running the real pipeline over the scripted history ------------------------
    def dataset(self) -> NFTDataset:
        """Build the Sec. III dataset from the scripted chain."""
        return build_dataset(self.node, self.marketplaces.addresses_by_name)

    def run_pipeline(self, config: Optional[DetectionConfig] = None) -> PipelineResult:
        """Run the full detection pipeline over the scripted chain."""
        pipeline = WashTradingPipeline(
            labels=self.labels,
            is_contract=self.chain.state.is_contract,
            config=config,
        )
        return pipeline.run(self.dataset())

    def market_context(self) -> MarketContext:
        """The profitability-analysis metadata for this micro world."""
        treasuries = {
            name: venue.treasury_address
            for name, venue in self.marketplaces.venues.items()
        }
        symbols = {
            venue: token.token_symbol
            for venue, token in self.marketplaces.reward_tokens.items()
        }
        return MarketContext(
            marketplace_addresses=self.marketplaces.addresses_by_name,
            treasury_addresses=treasuries,
            distributor_addresses=dict(self.marketplaces.distributor_addresses),
            reward_token_addresses=dict(self.marketplaces.reward_token_addresses),
            reward_token_symbols=symbols,
            oracle=self.oracle,
        )


def make_micro_world(seed: int = 11) -> MicroWorld:
    """Build a fresh micro world with one collection and one exchange."""
    chain = Chain(genesis_timestamp=SIMULATION_EPOCH)
    labels = LabelRegistry()
    registry = ContractRegistry()
    oracle = PriceOracle()
    marketplaces = build_standard_marketplaces(chain, labels, registry)
    exchange = CentralizedExchange("Coinbase", chain, labels, initial_liquidity_eth=1_000_000)

    collection = ERC721Collection("Test Apes", "TAPE", creation_timestamp=SIMULATION_EPOCH)
    collection_address = chain.deploy_contract(collection)
    registry.register(collection_address, kind="erc721", name="Test Apes")

    otc = OTCSwapDesk()
    otc_address = chain.deploy_contract(otc)
    registry.register(otc_address, kind="other", name="OTC Desk")

    clock = TimeAllocator(start_timestamp=SIMULATION_EPOCH)
    kit = TradingKit(
        chain=chain,
        marketplaces=marketplaces,
        collections={collection_address: collection},
        exchanges=[exchange],
        labels=labels,
        clock=clock,
        rng=DeterministicRNG(seed, "micro"),
        otc_desk_address=otc_address,
    )
    return MicroWorld(
        chain=chain,
        node=EthereumNode(chain),
        labels=labels,
        registry=registry,
        oracle=oracle,
        kit=kit,
        marketplaces=marketplaces,
        exchange=exchange,
        collection=collection,
        collection_address=collection_address,
    )


def script_round_trip_wash(
    world: MicroWorld,
    venue: str = "OpenSea",
    price_eth: float = 2.0,
    rounds: int = 4,
    with_funder: bool = True,
    with_exit: bool = True,
    start_day: int = 5,
) -> Dict[str, str]:
    """Script a classic two-account round-trip wash on a venue.

    Returns the named addresses used, for assertions.
    """
    kit = world.kit
    names: Dict[str, str] = {}
    alice = world.account("wash-alice")
    bob = world.account("wash-bob")
    names["alice"], names["bob"] = alice, bob

    funding_day = start_day - 1
    if with_funder:
        funder = world.account("wash-funder", funded_eth=3 * price_eth + 20, day=funding_day)
        names["funder"] = funder
        kit.transfer_eth(funder, alice, price_eth + 5, funding_day)
        kit.transfer_eth(funder, bob, price_eth + 5, funding_day)
    else:
        world.fund("wash-alice", price_eth + 5, funding_day)
        world.fund("wash-bob", price_eth + 5, funding_day)

    token_id = kit.mint(world.collection_address, alice, start_day)
    names["token_id"] = str(token_id)
    seller, buyer = alice, bob
    price = price_eth
    fee = world.marketplaces.venue(venue).fee_bps / 10_000
    for _ in range(rounds):
        kit.marketplace_sale(venue, world.collection_address, token_id, seller, buyer, price, start_day)
        seller, buyer = buyer, seller
        price = max(price * (1 - fee) - 0.001, 0.01)

    if with_exit:
        exit_account = world.account("wash-exit")
        names["exit"] = exit_account
        exit_day = start_day + 1
        for member in (alice, bob):
            balance = kit.balance_eth(member)
            if balance > 0.5:
                kit.transfer_eth(member, exit_account, balance - 0.3, exit_day)
    return names
