"""Unit and property proofs for the detection kernels.

Three layers, bottom up:

* the CSR Tarjan (:func:`tarjan_csr`) against the repo's iterative
  reference (:func:`tarjan_scc_adjacency`) and against networkx, on
  random graphs with self-loops, parallel edges and singletons --
  component *ids* must follow the reference's emission order exactly,
  and the compiled and pure-Python backends must be bit-identical;
* the zero-copy ``TokenColumns.as_arrays`` views (values, buffer
  pinning, release);
* the batched CSR component extraction
  (:func:`batch_token_components`) against the per-token interpreted
  walk (:func:`token_components`) under random exclusion masks.
"""

from __future__ import annotations

import networkx as nx
import numpy
import pytest
from hypothesis import given, settings, strategies as st

from repro.chain.types import NFTKey, NULL_ADDRESS
from repro.core.scc import tarjan_scc_adjacency
from repro.engine.kernels import (
    active_backend,
    batch_token_components,
    force_fallback,
    kernel_available,
    tarjan_csr,
)
from repro.engine.refine import token_components
from repro.engine.store import ColumnarTransferStore
from repro.ingest.records import NFTTransfer

REGULARS = [f"0xa{index}" for index in range(8)]
SERVICES = ["0xsvc0", "0xsvc1"]
CONTRACTS = ["0xct0", "0xct1"]
POOL = REGULARS + SERVICES + CONTRACTS + [NULL_ADDRESS]


# -- random graphs -------------------------------------------------------------


@st.composite
def random_graphs(draw):
    """A small digraph as (node_count, edge list); duplicates allowed."""
    node_count = draw(st.integers(min_value=0, max_value=12))
    if node_count == 0:
        return 0, []
    node = st.integers(min_value=0, max_value=node_count - 1)
    edges = draw(st.lists(st.tuples(node, node), max_size=40))
    return node_count, edges


def to_csr(node_count, edges):
    """The edge list as (adjacency, indptr, indices), edge order kept."""
    adjacency = [[] for _ in range(node_count)]
    for source, target in edges:
        adjacency[source].append(target)
    indptr = numpy.zeros(node_count + 1, dtype=numpy.int64)
    for node, successors in enumerate(adjacency):
        indptr[node + 1] = indptr[node] + len(successors)
    flat = [target for successors in adjacency for target in successors]
    indices = numpy.array(flat, dtype=numpy.int64)
    return adjacency, indptr, indices


@settings(max_examples=150, deadline=None)
@given(random_graphs())
def test_tarjan_csr_matches_reference_emission_order(graph):
    """comp_of[v] is v's component's index in the reference emission."""
    node_count, edges = graph
    adjacency, indptr, indices = to_csr(node_count, edges)
    comp_of, count = tarjan_csr(indptr, indices)
    reference = tarjan_scc_adjacency(node_count, adjacency)
    assert count == len(reference)
    for position, members in enumerate(reference):
        for member in members:
            assert comp_of[member] == position


@settings(max_examples=100, deadline=None)
@given(random_graphs())
def test_tarjan_csr_matches_networkx(graph):
    """The component partition agrees with the independent networkx SCC."""
    node_count, edges = graph
    _, indptr, indices = to_csr(node_count, edges)
    comp_of, count = tarjan_csr(indptr, indices)
    digraph = nx.DiGraph()
    digraph.add_nodes_from(range(node_count))
    digraph.add_edges_from(edges)
    expected = {
        frozenset(component)
        for component in nx.strongly_connected_components(digraph)
    }
    grouped = {}
    for node in range(node_count):
        grouped.setdefault(int(comp_of[node]), set()).add(node)
    assert {frozenset(members) for members in grouped.values()} == expected
    assert count == len(expected)


@settings(max_examples=100, deadline=None)
@given(random_graphs())
def test_backends_are_bit_identical(graph):
    """Compiled and pure-Python backends fill identical outputs.

    When no compiler was available both runs take the fallback and the
    check is trivially green -- the CI kernel-smoke job runs this file
    once compiled and once under ``REPRO_NO_CKERNEL=1``.
    """
    node_count, edges = graph
    _, indptr, indices = to_csr(node_count, edges)
    default_comp, default_count = tarjan_csr(indptr, indices)
    with force_fallback():
        assert active_backend() == "fallback"
        fallback_comp, fallback_count = tarjan_csr(indptr, indices)
    assert default_count == fallback_count
    assert numpy.array_equal(default_comp, fallback_comp)


def test_backend_reporting_is_coherent():
    backend = active_backend()
    assert backend in ("compiled", "fallback")
    assert (backend == "compiled") == kernel_available()
    with force_fallback():
        assert active_backend() == "fallback"
        with force_fallback():  # re-entrant
            assert active_backend() == "fallback"
        assert active_backend() == "fallback"
    assert active_backend() == backend


# -- zero-copy column views ----------------------------------------------------


def make_transfer(nft, sender, recipient, ts, price, tag):
    return NFTTransfer(
        nft=nft,
        sender=sender,
        recipient=recipient,
        tx_hash=f"0xhash{tag}",
        block_number=ts,
        timestamp=ts,
        price_wei=price,
        gas_fee_wei=10,
        tx_sender=sender,
    )


def test_as_arrays_views_share_the_column_buffers():
    nft = NFTKey(contract="0x" + "c" * 40, token_id=1)
    store = ColumnarTransferStore()
    columns = store.add_token(
        nft,
        [
            make_transfer(nft, "0xa0", "0xa1", 1, 10**18, 0),
            make_transfer(nft, "0xa1", "0xa0", 2, 0, 1),
        ],
    )
    timestamps, senders, recipients, flags = columns.as_arrays()
    assert timestamps.dtype == numpy.int64
    assert flags.dtype == numpy.uint8
    assert timestamps.tolist() == list(columns.timestamps)
    assert senders.tolist() == list(columns.senders)
    assert recipients.tolist() == list(columns.recipients)
    assert flags.tolist() == list(columns.payment_flags)
    # The views pin the exporting array buffers: the column cannot grow
    # while one is alive, and can again once every view is dropped.
    with pytest.raises(BufferError):
        columns.timestamps.append(3)
    del timestamps, senders, recipients, flags
    columns.timestamps.append(3)
    del columns.timestamps[-1]


# -- batched CSR extraction vs the interpreted walk ----------------------------


@st.composite
def random_histories(draw):
    """A few NFTs with random transfers over the mixed account pool."""
    token_count = draw(st.integers(min_value=1, max_value=4))
    histories = {}
    tag = 0
    for token_id in range(token_count):
        nft = NFTKey(contract="0x" + "c" * 40, token_id=token_id)
        edge_count = draw(st.integers(min_value=0, max_value=14))
        transfers = []
        for _ in range(edge_count):
            sender = draw(st.sampled_from(POOL))
            recipient = draw(st.sampled_from(POOL))
            ts = draw(st.integers(min_value=0, max_value=30))
            price = draw(st.sampled_from([0, 0, 10**18]))
            transfers.append(make_transfer(nft, sender, recipient, ts, price, tag))
            tag += 1
        histories[nft] = transfers
    return histories


@settings(max_examples=60, deadline=None)
@given(random_histories(), st.sets(st.sampled_from(POOL), max_size=6))
def test_batched_csr_matches_per_token_walk(histories, excluded_addresses):
    """Identical components, member ids, row tuples and ordering."""
    store = ColumnarTransferStore.from_transfers(histories)
    excluded = store.ids_matching(excluded_addresses.__contains__)
    tokens = list(store)
    reference = [token_components(columns, excluded) for columns in tokens]
    batched = batch_token_components(tokens, excluded, store.account_count)
    assert batched == reference
    with force_fallback():
        assert (
            batch_token_components(tokens, excluded, store.account_count)
            == reference
        )
