"""Parity proofs: the kernel tier reproduces the interpreted engine.

Mirrors ``tests/engine/test_parity.py`` one tier up: every output of the
kernel-backed refinement (:func:`refine_tokens_kernel`,
:func:`refine_token_states`) and of ``WashTradingPipeline(engine=
"kernel")`` must be identical to the interpreted columnar path and the
legacy networkx path -- compiled backend and pure-Python fallback, batch
(serial and process-pool) and streaming, in-order and through a reorg
storm.  The opt-in volume-match detector is pinned batch == stream here
as well.
"""

from __future__ import annotations

import random
from collections import defaultdict
from contextlib import nullcontext

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.activity import DetectionMethod
from repro.core.detectors.base import DetectionContext
from repro.core.detectors.pipeline import WashTradingPipeline
from repro.engine.executor import TransactionView
from repro.engine.kernels import (
    force_fallback,
    refine_token_states,
    refine_tokens_kernel,
)
from repro.engine.refine import refine_tokens
from repro.engine.store import ColumnarTransferStore
from repro.ingest.dataset import build_dataset
from repro.simulation.builder import build_default_world
from repro.simulation.config import SimulationConfig
from repro.simulation.reorg import ReorgStorm
from repro.stream import DirtyTokenScheduler, StreamingMonitor
from tests.engine.test_parity import (
    CONTRACT_SET,
    activity_key,
    candidate_key,
    make_labels,
    minimal_dataset,
    random_histories,
    run_backend,
)
from tests.stream.test_stream_parity import assert_results_match

BACKENDS = ["compiled", "fallback"]


def backend_context(backend):
    """``force_fallback`` for the fallback runs, a no-op otherwise.

    When no C compiler is available the "compiled" runs silently take
    the fallback too (that *is* the graceful-degradation contract); the
    CI kernel-smoke job covers both states explicitly.
    """
    return force_fallback() if backend == "fallback" else nullcontext()


def stages_of(refinement):
    return [stage.to_stage() for stage in refinement.stages]


def assert_refinements_equal(kernel, interpreted):
    assert stages_of(kernel) == stages_of(interpreted)
    assert list(map(candidate_key, kernel.candidates)) == list(
        map(candidate_key, interpreted.candidates)
    )


def assert_full_parity(engine, legacy):
    assert engine.refinement.stages == legacy.refinement.stages
    assert sorted(map(candidate_key, engine.refinement.candidates)) == sorted(
        map(candidate_key, legacy.refinement.candidates)
    )
    assert sorted(map(activity_key, engine.activities)) == sorted(
        map(activity_key, legacy.activities)
    )
    assert len(engine.unconfirmed) == len(legacy.unconfirmed)
    assert engine.count_by_method() == legacy.count_by_method()
    assert engine.venn_counts() == legacy.venn_counts()
    assert engine.washed_nfts() == legacy.washed_nfts()


# -- refinement-layer parity ---------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(random_histories(), st.booleans(), st.booleans(), st.booleans())
def test_kernel_refinement_matches_interpreted(
    histories, skip_services, skip_contracts, skip_zero_volume
):
    """Stage statistics, candidates and order agree, both backends."""
    labels = make_labels()
    store = ColumnarTransferStore.from_transfers(histories)
    kwargs = dict(
        service_ids=store.ids_matching(labels.is_graph_excluded_service),
        contract_ids=store.ids_matching(CONTRACT_SET.__contains__),
        skip_service_removal=skip_services,
        skip_contract_removal=skip_contracts,
        skip_zero_volume_removal=skip_zero_volume,
    )
    interpreted = refine_tokens(store.accounts, store, **kwargs)
    for backend in BACKENDS:
        with backend_context(backend):
            kernel = refine_tokens_kernel(store.accounts, list(store), **kwargs)
        assert_refinements_equal(kernel, interpreted)


@settings(max_examples=30, deadline=None)
@given(random_histories())
def test_refine_token_states_matches_single_token_runs(histories):
    """Element i of the batched pass equals a lone run over token i."""
    labels = make_labels()
    store = ColumnarTransferStore.from_transfers(histories)
    service_ids = store.ids_matching(labels.is_graph_excluded_service)
    contract_ids = store.ids_matching(CONTRACT_SET.__contains__)
    tokens = list(store)
    states = refine_token_states(store.accounts, tokens, service_ids, contract_ids)
    assert len(states) == len(tokens)
    for columns, state in zip(tokens, states):
        single = refine_tokens(
            store.accounts, [columns], service_ids, contract_ids
        )
        assert_refinements_equal(state, single)


# -- full pipeline parity ------------------------------------------------------


@pytest.fixture(scope="module")
def tiny_dataset(tiny_world):
    return build_dataset(tiny_world.node, tiny_world.marketplace_addresses)


@pytest.fixture(scope="module")
def tiny_legacy(tiny_world, tiny_dataset):
    return run_backend(tiny_world, tiny_dataset)


class TestKernelPipelineParity:
    @pytest.mark.parametrize("workers", [0, 2], ids=["serial", "process-pool"])
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_kernel_engine_matches_legacy(
        self, tiny_world, tiny_dataset, tiny_legacy, workers, backend
    ):
        with backend_context(backend):
            kernel = run_backend(
                tiny_world, tiny_dataset, engine="kernel", workers=workers
            )
        assert_full_parity(kernel, tiny_legacy)

    def test_kernel_engine_matches_columnar(self, tiny_world, tiny_dataset):
        columnar = run_backend(tiny_world, tiny_dataset, engine="columnar")
        kernel = run_backend(tiny_world, tiny_dataset, engine="kernel")
        assert kernel.refinement.stages == columnar.refinement.stages
        assert list(map(candidate_key, kernel.refinement.candidates)) == list(
            map(candidate_key, columnar.refinement.candidates)
        )
        assert sorted(map(activity_key, kernel.activities)) == sorted(
            map(activity_key, columnar.activities)
        )


# -- streaming parity ----------------------------------------------------------


def replay_through_scheduler(histories, block_order, use_kernels):
    """Feed one transfer history to a scheduler, one block per tick."""
    labels = make_labels()
    is_contract = CONTRACT_SET.__contains__
    store = ColumnarTransferStore()
    scheduler = DirtyTokenScheduler(
        store, labels=labels, is_contract=is_contract, use_kernels=use_kernels
    )
    context = DetectionContext(
        dataset=TransactionView({}), labels=labels, is_contract=is_contract
    )
    by_block = defaultdict(lambda: defaultdict(list))
    for nft, transfers in histories.items():
        for transfer in transfers:
            by_block[transfer.block_number][nft].append(transfer)
    for block in block_order:
        touched = store.extend(by_block.get(block, {}))
        scheduler.process(touched, context)
    return scheduler.result()


@settings(max_examples=25, deadline=None)
@given(random_histories(), st.randoms(use_true_random=False))
def test_scheduler_kernel_path_matches_interpreted_and_batch(histories, rng):
    """Kernel and interpreted scheduling converge to the batch result,
    even with blocks arriving out of order (the reorg-shaped append
    fallback path)."""
    blocks = sorted(
        {t.block_number for transfers in histories.values() for t in transfers}
    )
    shuffled = list(blocks)
    rng.shuffle(shuffled)
    kernel = replay_through_scheduler(histories, shuffled, use_kernels=True)
    interpreted = replay_through_scheduler(histories, shuffled, use_kernels=False)
    labels = make_labels()
    batch = WashTradingPipeline(
        labels=labels, is_contract=CONTRACT_SET.__contains__, engine="kernel"
    ).run(minimal_dataset(histories))
    assert_results_match(kernel, batch)
    assert_results_match(interpreted, batch)


def test_reorg_storm_with_kernels_matches_batch():
    """A randomized advance/reorg/advance storm on the kernel scheduler
    still equals a fresh kernel-engine batch build of the final chain."""
    world = build_default_world(SimulationConfig.tiny())
    monitor = StreamingMonitor.for_world(
        world, max_reorg_depth=64, use_kernels=True
    )
    storm = ReorgStorm(
        world,
        random.Random(7),
        reorg_probability=0.45,
        max_depth=13,
        drop_probability=0.3,
        delay_probability=0.25,
        max_shorten=2,
        step_range=(5, 90),
    )
    summaries = storm.run(monitor)
    assert summaries, "the storm must actually reorg"
    dataset = build_dataset(world.node, world.marketplace_addresses)
    batch = WashTradingPipeline(
        labels=world.labels, is_contract=world.is_contract, engine="kernel"
    ).run(dataset)
    assert_results_match(monitor.result(), batch, ordered=True)


# -- volume-match across execution paths ---------------------------------------


class TestVolumeMatchParity:
    METHODS = frozenset(DetectionMethod.paper_methods()) | {
        DetectionMethod.VOLUME_MATCH
    }

    def test_batch_engines_agree_with_volume_match(
        self, tiny_world, tiny_dataset
    ):
        legacy = run_backend(tiny_world, tiny_dataset, enabled_methods=self.METHODS)
        kernel = run_backend(
            tiny_world, tiny_dataset, enabled_methods=self.METHODS, engine="kernel"
        )
        assert_full_parity(kernel, legacy)
        assert DetectionMethod.VOLUME_MATCH in kernel.count_by_method()

    def test_streaming_agrees_with_batch_with_volume_match(
        self, tiny_world, tiny_dataset
    ):
        kernel = run_backend(
            tiny_world, tiny_dataset, enabled_methods=self.METHODS, engine="kernel"
        )
        monitor = StreamingMonitor.for_world(
            tiny_world, enabled_methods=self.METHODS
        )
        monitor.run(step_blocks=29)
        assert_results_match(monitor.result(), kernel, ordered=True)

    def test_default_method_set_stays_the_papers(self, tiny_world, tiny_dataset):
        """Headline numbers must not move unless volume-match is asked for."""
        default = run_backend(tiny_world, tiny_dataset, engine="kernel")
        assert DetectionMethod.VOLUME_MATCH not in default.count_by_method()
