"""Parity proofs: the columnar engine reproduces the legacy pipeline.

Two layers of evidence:

* randomized cross-checks that mask-based refinement produces the same
  funnel-stage statistics and candidate sets as the networkx funnel on
  arbitrary transfer histories, and
* full-pipeline runs over simulated worlds asserting identical confirmed
  activities (accounts, methods, transfers, evidence) across the legacy
  path, the serial engine and the process-pool engine.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.chain.types import NFTKey, NULL_ADDRESS
from repro.core.detectors.pipeline import WashTradingPipeline
from repro.core.refine import RefinementFunnel
from repro.engine.refine import refine_tokens
from repro.engine.store import ColumnarTransferStore
from repro.ingest.dataset import NFTDataset, build_dataset
from repro.ingest.records import NFTTransfer
from repro.services.labels import LabelRegistry

REGULARS = [f"0xa{index}" for index in range(8)]
SERVICES = ["0xsvc0", "0xsvc1"]
CONTRACTS = ["0xct0", "0xct1"]
POOL = REGULARS + SERVICES + CONTRACTS + [NULL_ADDRESS]
CONTRACT_SET = frozenset(CONTRACTS)


def make_labels() -> LabelRegistry:
    labels = LabelRegistry()
    for address in SERVICES:
        labels.add(address, "exchange")
    return labels


def make_transfer(nft, sender, recipient, ts, price, tag):
    return NFTTransfer(
        nft=nft,
        sender=sender,
        recipient=recipient,
        tx_hash=f"0xhash{tag}",
        block_number=ts,
        timestamp=ts,
        price_wei=price,
        gas_fee_wei=10,
        tx_sender=sender,
    )


def minimal_dataset(transfers_by_nft) -> NFTDataset:
    """A dataset shell carrying only what the refinement funnel reads."""
    return NFTDataset(
        transfers_by_nft=transfers_by_nft,
        compliance=None,
        scan=None,
        account_transactions={},
        marketplace_addresses={},
    )


def candidate_key(component):
    return (
        component.nft.contract,
        component.nft.token_id,
        tuple(sorted(component.accounts)),
        tuple(sorted(transfer.tx_hash for transfer in component.transfers)),
    )


@st.composite
def random_histories(draw):
    """A few NFTs with random transfers over the mixed account pool."""
    token_count = draw(st.integers(min_value=1, max_value=4))
    histories = {}
    tag = 0
    for token_id in range(token_count):
        nft = NFTKey(contract="0x" + "c" * 40, token_id=token_id)
        edge_count = draw(st.integers(min_value=0, max_value=14))
        transfers = []
        for _ in range(edge_count):
            sender = draw(st.sampled_from(POOL))
            recipient = draw(st.sampled_from(POOL))
            ts = draw(st.integers(min_value=0, max_value=30))
            price = draw(st.sampled_from([0, 0, 10**18]))
            transfers.append(make_transfer(nft, sender, recipient, ts, price, tag))
            tag += 1
        histories[nft] = transfers
    return histories


@settings(max_examples=60, deadline=None)
@given(random_histories())
def test_masked_refinement_matches_legacy_funnel(histories):
    """Stage statistics and candidate sets agree on arbitrary histories."""
    labels = make_labels()
    is_contract = CONTRACT_SET.__contains__

    legacy = RefinementFunnel(labels=labels, is_contract=is_contract).run(
        minimal_dataset(histories)
    )

    store = ColumnarTransferStore.from_transfers(histories)
    engine = refine_tokens(
        store.accounts,
        store,
        service_ids=store.ids_matching(labels.is_graph_excluded_service),
        contract_ids=store.ids_matching(is_contract),
    )

    assert [stage.to_stage() for stage in engine.stages] == legacy.stages
    assert sorted(map(candidate_key, engine.candidates)) == sorted(
        map(candidate_key, legacy.candidates)
    )


@settings(max_examples=25, deadline=None)
@given(
    random_histories(),
    st.booleans(),
    st.booleans(),
    st.booleans(),
)
def test_masked_refinement_matches_legacy_with_skips(
    histories, skip_services, skip_contracts, skip_zero_volume
):
    """The ablation skip flags behave identically on both paths."""
    labels = make_labels()
    is_contract = CONTRACT_SET.__contains__

    legacy = RefinementFunnel(
        labels=labels,
        is_contract=is_contract,
        skip_service_removal=skip_services,
        skip_contract_removal=skip_contracts,
        skip_zero_volume_removal=skip_zero_volume,
    ).run(minimal_dataset(histories))

    store = ColumnarTransferStore.from_transfers(histories)
    engine = refine_tokens(
        store.accounts,
        store,
        service_ids=store.ids_matching(labels.is_graph_excluded_service),
        contract_ids=store.ids_matching(is_contract),
        skip_service_removal=skip_services,
        skip_contract_removal=skip_contracts,
        skip_zero_volume_removal=skip_zero_volume,
    )

    assert [stage.to_stage() for stage in engine.stages] == legacy.stages
    assert sorted(map(candidate_key, engine.candidates)) == sorted(
        map(candidate_key, legacy.candidates)
    )


# -- full pipeline parity over simulated worlds --------------------------------


@pytest.fixture(scope="module")
def tiny_dataset(tiny_world):
    return build_dataset(tiny_world.node, tiny_world.marketplace_addresses)


def run_backend(world, dataset, **kwargs):
    pipeline = WashTradingPipeline(
        labels=world.labels, is_contract=world.is_contract, **kwargs
    )
    return pipeline.run(dataset)


def activity_key(activity):
    return (
        activity.nft.contract,
        activity.nft.token_id,
        tuple(sorted(activity.accounts)),
        tuple(sorted(method.value for method in activity.methods)),
        tuple(sorted(t.tx_hash for t in activity.component.transfers)),
        tuple(
            sorted(
                repr(sorted(evidence.details.items()))
                for evidence in activity.evidence
            )
        ),
    )


class TestFullPipelineParity:
    @pytest.mark.parametrize("workers", [0, 2], ids=["serial", "process-pool"])
    def test_engine_matches_legacy_on_tiny_world(self, tiny_world, tiny_dataset, workers):
        legacy = run_backend(tiny_world, tiny_dataset)
        engine = run_backend(
            tiny_world, tiny_dataset, engine="columnar", workers=workers
        )

        assert engine.refinement.stages == legacy.refinement.stages
        assert sorted(map(candidate_key, engine.refinement.candidates)) == sorted(
            map(candidate_key, legacy.refinement.candidates)
        )
        assert sorted(map(activity_key, engine.activities)) == sorted(
            map(activity_key, legacy.activities)
        )
        assert len(engine.unconfirmed) == len(legacy.unconfirmed)
        assert engine.count_by_method() == legacy.count_by_method()
        assert engine.venn_counts() == legacy.venn_counts()
        assert engine.funder_kind_counts() == legacy.funder_kind_counts()
        assert engine.exit_kind_counts() == legacy.exit_kind_counts()
        assert engine.washed_nfts() == legacy.washed_nfts()

    def test_shard_count_does_not_change_results(self, tiny_world, tiny_dataset):
        one = run_backend(tiny_world, tiny_dataset, engine="columnar", shards=1)
        many = run_backend(tiny_world, tiny_dataset, engine="columnar", shards=7)
        assert one.refinement.stages == many.refinement.stages
        assert list(map(candidate_key, one.refinement.candidates)) == list(
            map(candidate_key, many.refinement.candidates)
        )
        assert sorted(map(activity_key, one.activities)) == sorted(
            map(activity_key, many.activities)
        )

    def test_engine_respects_enabled_methods(self, tiny_world, tiny_dataset):
        from repro.core.activity import DetectionMethod

        methods = {DetectionMethod.SELF_TRADE, DetectionMethod.ZERO_RISK}
        legacy = run_backend(tiny_world, tiny_dataset, enabled_methods=methods)
        engine = run_backend(
            tiny_world, tiny_dataset, enabled_methods=methods, engine="columnar"
        )
        assert sorted(map(activity_key, engine.activities)) == sorted(
            map(activity_key, legacy.activities)
        )
        assert engine.count_by_method() == legacy.count_by_method()

    def test_unknown_engine_rejected(self, tiny_world):
        with pytest.raises(ValueError):
            WashTradingPipeline(
                labels=tiny_world.labels,
                is_contract=tiny_world.is_contract,
                engine="quantum",
            )
