"""Unit tests for the columnar store, mask components and sharding."""

from __future__ import annotations

import pickle

import pytest

from repro.chain.types import NFTKey
from repro.core.graph import build_transaction_graph
from repro.engine.executor import AccountSetPredicate, partition_tokens
from repro.engine.refine import token_components
from repro.engine.store import ColumnarTransferStore
from repro.ingest.records import NFTTransfer

NFT = NFTKey(contract="0x" + "d" * 40, token_id=7)


def make_transfer(sender, recipient, ts=0, price=0, block=None):
    return NFTTransfer(
        nft=NFT,
        sender=sender,
        recipient=recipient,
        tx_hash=f"0x{sender}-{recipient}-{ts}",
        block_number=block if block is not None else ts,
        timestamp=ts,
        price_wei=price,
        gas_fee_wei=10,
        tx_sender=sender,
    )


class TestColumnarTransferStore:
    def test_interning_is_stable_and_dense(self):
        store = ColumnarTransferStore()
        first = store.intern("A")
        second = store.intern("B")
        assert store.intern("A") == first
        assert (first, second) == (0, 1)
        assert store.accounts == ["A", "B"]
        assert store.address_of(second) == "B"
        assert store.account_id("B") == second

    def test_rows_sorted_like_legacy_graph(self):
        transfers = [
            make_transfer("B", "C", ts=9),
            make_transfer("A", "B", ts=1),
            make_transfer("C", "A", ts=9, block=8),
        ]
        store = ColumnarTransferStore.from_transfers({NFT: transfers})
        columns = store.tokens[NFT]
        legacy = build_transaction_graph(NFT, transfers)
        assert list(columns.transfers) == legacy.transfers
        assert list(columns.timestamps) == [t.timestamp for t in legacy.transfers]

    def test_columns_align_with_transfers(self):
        transfers = [make_transfer("A", "B", ts=1, price=5), make_transfer("B", "B", ts=2)]
        store = ColumnarTransferStore.from_transfers({NFT: transfers})
        columns = store.tokens[NFT]
        for row in range(columns.row_count):
            transfer = columns.transfers[row]
            assert store.address_of(columns.senders[row]) == transfer.sender
            assert store.address_of(columns.recipients[row]) == transfer.recipient
            assert bool(columns.payment_flags[row]) == transfer.has_payment
        assert columns.account_ids == {store.account_id("A"), store.account_id("B")}

    def test_counts_and_order(self):
        other = NFTKey(contract="0x" + "e" * 40, token_id=1)
        store = ColumnarTransferStore.from_transfers(
            {NFT: [make_transfer("A", "B", 1)], other: [make_transfer("B", "A", 2)]}
        )
        assert store.token_count == 2
        assert store.transfer_count == 2
        assert store.account_count == 2
        assert store.nfts() == [NFT, other]

    def test_ids_matching_runs_predicate_per_account(self):
        store = ColumnarTransferStore.from_transfers(
            {NFT: [make_transfer("A", "B", 1), make_transfer("B", "A", 2)]}
        )
        matched = store.ids_matching(lambda address: address == "A")
        assert store.addresses_of(matched) == {"A"}

    def test_touched_by(self):
        store = ColumnarTransferStore.from_transfers({NFT: [make_transfer("A", "B", 1)]})
        columns = store.tokens[NFT]
        assert columns.touched_by(frozenset({store.account_id("A")}))
        assert not columns.touched_by(frozenset({999}))
        assert not columns.touched_by(frozenset())


class TestIncrementalAppend:
    def equivalent_batch(self, transfers):
        return ColumnarTransferStore.from_transfers({NFT: transfers})

    def assert_same_columns(self, store, reference):
        mine, theirs = store.tokens[NFT], reference.tokens[NFT]
        assert list(mine.transfers) == list(theirs.transfers)
        assert list(mine.timestamps) == list(theirs.timestamps)
        assert mine.payment_flags == theirs.payment_flags
        assert [store.address_of(i) for i in mine.senders] == [
            reference.address_of(i) for i in theirs.senders
        ]
        assert [store.address_of(i) for i in mine.recipients] == [
            reference.address_of(i) for i in theirs.recipients
        ]
        assert store.addresses_of(mine.account_ids) == reference.addresses_of(
            theirs.account_ids
        )

    def test_in_order_append_extends_in_place(self):
        first = [make_transfer("A", "B", 1, price=5)]
        second = [make_transfer("B", "C", 2), make_transfer("C", "A", 3, price=1)]
        store = ColumnarTransferStore()
        store.add_token(NFT, first)
        columns = store.tokens[NFT]
        appended = store.append_token_transfers(NFT, second)
        assert appended is columns  # fast path: no rebuild
        self.assert_same_columns(store, self.equivalent_batch(first + second))

    def test_out_of_order_append_rebuilds_identically(self):
        late = [make_transfer("A", "B", 5)]
        early = [make_transfer("B", "A", 1, price=2)]
        store = ColumnarTransferStore()
        store.add_token(NFT, late)
        store.append_token_transfers(NFT, early)
        self.assert_same_columns(store, self.equivalent_batch(late + early))

    def test_append_to_unknown_token_creates_it(self):
        store = ColumnarTransferStore()
        store.append_token_transfers(NFT, [make_transfer("A", "B", 1)])
        assert store.token_count == 1
        assert store.tokens[NFT].row_count == 1

    def test_empty_append_is_a_noop(self):
        store = ColumnarTransferStore()
        store.add_token(NFT, [make_transfer("A", "B", 1)])
        columns = store.append_token_transfers(NFT, [])
        assert columns.row_count == 1

    def test_empty_append_never_creates_a_phantom_token(self):
        store = ColumnarTransferStore()
        assert store.append_token_transfers(NFT, []) is None
        assert store.token_count == 0
        assert store.extend({NFT: []}) == []
        assert store.token_count == 0

    def test_extend_reports_touched_tokens(self):
        other = NFTKey(contract="0x" + "e" * 40, token_id=1)
        store = ColumnarTransferStore()
        store.add_token(NFT, [make_transfer("A", "B", 1)])
        touched = store.extend(
            {NFT: [make_transfer("B", "A", 2)], other: [make_transfer("C", "D", 2)]}
        )
        assert touched == [NFT, other]
        assert store.token_count == 2
        assert store.transfer_count == 3


class TestInPlaceRebuildAliasing:
    """The out-of-order fallback must never strand a columns reference."""

    def test_out_of_order_rebuild_mutates_in_place(self):
        store = ColumnarTransferStore()
        columns = store.add_token(NFT, [make_transfer("A", "B", 5)])
        held = store.tokens[NFT]
        assert held is columns
        rebuilt = store.append_token_transfers(NFT, [make_transfer("B", "A", 1)])
        # Same object: a caller holding the pre-rebuild reference keeps
        # reading the current (re-sorted, two-row) columns.
        assert rebuilt is held
        assert store.tokens[NFT] is held
        assert held.row_count == 2
        assert [t.timestamp for t in held.transfers] == [1, 5]
        assert list(held.timestamps) == [1, 5]
        assert NFT in store.rebuilt_tokens

    def test_in_order_append_does_not_mark_rebuilt(self):
        store = ColumnarTransferStore()
        store.add_token(NFT, [make_transfer("A", "B", 1)])
        store.append_token_transfers(NFT, [make_transfer("B", "A", 2)])
        assert NFT not in store.rebuilt_tokens


class TestRollback:
    def test_truncate_token_restores_watermark_state(self):
        first = [make_transfer("A", "B", 1, price=5), make_transfer("B", "C", 2)]
        second = [make_transfer("C", "A", 3), make_transfer("A", "D", 4)]
        store = ColumnarTransferStore()
        store.add_token(NFT, first)
        columns = store.tokens[NFT]
        watermark = columns.row_count
        store.append_token_transfers(NFT, second)
        removed = store.truncate_token(NFT, watermark)
        assert removed == len(second)
        assert store.tokens[NFT] is columns  # mutated in place
        reference = ColumnarTransferStore.from_transfers({NFT: first})
        assert list(columns.transfers) == list(reference.tokens[NFT].transfers)
        assert list(columns.timestamps) == list(reference.tokens[NFT].timestamps)
        assert columns.payment_flags == reference.tokens[NFT].payment_flags
        assert store.addresses_of(columns.account_ids) == {"A", "B", "C"}

    def test_truncate_interned_accounts_survive(self):
        store = ColumnarTransferStore()
        store.add_token(NFT, [make_transfer("A", "B", 1)])
        store.append_token_transfers(NFT, [make_transfer("C", "D", 2)])
        store.truncate_token(NFT, 1)
        # Ids are append-only: "C"/"D" stay interned, rows just stop
        # referencing them.
        assert store.account_count == 4
        assert store.addresses_of(store.tokens[NFT].account_ids) == {"A", "B"}

    def test_truncate_to_zero_removes_token(self):
        store = ColumnarTransferStore()
        store.add_token(NFT, [make_transfer("A", "B", 1)])
        assert store.truncate_token(NFT, 0) == 1
        assert NFT not in store.tokens
        assert store.token_count == 0

    def test_truncate_refuses_rebuilt_tokens(self):
        store = ColumnarTransferStore()
        store.add_token(NFT, [make_transfer("A", "B", 5)])
        store.append_token_transfers(NFT, [make_transfer("B", "A", 1)])
        with pytest.raises(ValueError, match="rebuild_token"):
            store.truncate_token(NFT, 1)

    def test_truncate_validates_row_count(self):
        store = ColumnarTransferStore()
        store.add_token(NFT, [make_transfer("A", "B", 1)])
        with pytest.raises(ValueError):
            store.truncate_token(NFT, 2)
        with pytest.raises(ValueError):
            store.truncate_token(NFT, -1)
        assert store.truncate_token(NFT, 1) == 0

    def test_rebuild_token_recolumnarizes_and_clears_mark(self):
        store = ColumnarTransferStore()
        columns = store.add_token(NFT, [make_transfer("A", "B", 5)])
        store.append_token_transfers(NFT, [make_transfer("B", "A", 1)])
        assert NFT in store.rebuilt_tokens
        surviving = [make_transfer("B", "A", 1)]
        rebuilt = store.rebuild_token(NFT, surviving)
        assert rebuilt is columns
        assert rebuilt.row_count == 1
        assert NFT not in store.rebuilt_tokens

    def test_rebuild_token_with_nothing_left_removes_it(self):
        store = ColumnarTransferStore()
        store.add_token(NFT, [make_transfer("A", "B", 5)])
        store.append_token_transfers(NFT, [make_transfer("B", "A", 1)])
        assert store.rebuild_token(NFT, []) is None
        assert NFT not in store.tokens
        assert NFT not in store.rebuilt_tokens

    def test_remove_token_forgets_everything(self):
        store = ColumnarTransferStore()
        store.add_token(NFT, [make_transfer("A", "B", 5)])
        store.append_token_transfers(NFT, [make_transfer("B", "A", 1)])
        store.remove_token(NFT)
        assert NFT not in store.tokens
        assert NFT not in store.rebuilt_tokens
        store.remove_token(NFT)  # idempotent


class TestTokenComponents:
    def build(self, transfers):
        store = ColumnarTransferStore.from_transfers({NFT: transfers})
        return store, store.tokens[NFT]

    def test_round_trip_component(self):
        store, columns = self.build(
            [make_transfer("A", "B", 1, price=1), make_transfer("B", "A", 2, price=1)]
        )
        components = token_components(columns, frozenset())
        assert len(components) == 1
        assert store.addresses_of(components[0].member_ids) == {"A", "B"}
        assert components[0].rows == (0, 1)

    def test_chain_yields_nothing(self):
        _, columns = self.build([make_transfer("A", "B", 1), make_transfer("B", "C", 2)])
        assert token_components(columns, frozenset()) == []

    def test_self_loop_singleton_kept(self):
        store, columns = self.build([make_transfer("A", "A", 1)])
        components = token_components(columns, frozenset())
        assert len(components) == 1
        assert store.addresses_of(components[0].member_ids) == {"A"}

    def test_exclusion_mask_breaks_cycle(self):
        store, columns = self.build(
            [
                make_transfer("A", "X", 1),
                make_transfer("X", "A", 2),
            ]
        )
        assert len(token_components(columns, frozenset())) == 1
        masked = token_components(columns, frozenset({store.account_id("X")}))
        assert masked == []

    def test_mask_only_affects_touching_rows(self):
        store, columns = self.build(
            [
                make_transfer("A", "B", 1),
                make_transfer("B", "A", 2),
                make_transfer("A", "X", 3),
            ]
        )
        masked = token_components(columns, frozenset({store.account_id("X")}))
        assert len(masked) == 1
        assert store.addresses_of(masked[0].member_ids) == {"A", "B"}


class TestSharding:
    def test_partition_preserves_order_and_covers_all(self):
        keys = [NFTKey(contract="0x" + "f" * 40, token_id=i) for i in range(10)]
        shards = partition_tokens(keys, 3)
        assert [key for shard in shards for key in shard] == keys
        assert len(shards) == 3
        assert max(len(s) for s in shards) - min(len(s) for s in shards) <= 1

    def test_partition_clamps_shard_count(self):
        keys = [NFTKey(contract="0x" + "f" * 40, token_id=i) for i in range(2)]
        assert len(partition_tokens(keys, 16)) == 2
        assert partition_tokens([], 4) == []
        assert len(partition_tokens(keys, 0)) == 1

    def test_account_set_predicate_pickles(self):
        predicate = AccountSetPredicate({"A", "B"})
        clone = pickle.loads(pickle.dumps(predicate))
        assert clone("A") and not clone("Z")

    def test_broken_pool_warns_and_falls_back_to_serial(self, tiny_world, monkeypatch):
        from repro.core.detectors.pipeline import WashTradingPipeline
        from repro.engine import executor
        from repro.ingest.dataset import build_dataset

        class BrokenPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no processes for you")

        monkeypatch.setattr(executor, "ProcessPoolExecutor", BrokenPool)
        dataset = build_dataset(tiny_world.node, tiny_world.marketplace_addresses)
        pipeline = WashTradingPipeline(
            labels=tiny_world.labels,
            is_contract=tiny_world.is_contract,
            engine="columnar",
            workers=4,
        )
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            result = pipeline.run(dataset)
        serial = WashTradingPipeline(
            labels=tiny_world.labels,
            is_contract=tiny_world.is_contract,
            engine="columnar",
        ).run(dataset)
        assert result.activity_count == serial.activity_count
        assert result.refinement.stages == serial.refinement.stages


class TestDatasetIntegration:
    def test_columnar_store_cached_on_dataset(self, tiny_world):
        from repro.ingest.dataset import build_dataset

        dataset = build_dataset(tiny_world.node, tiny_world.marketplace_addresses)
        store = dataset.columnar_store()
        assert store is dataset.columnar_store()
        assert store.transfer_count == dataset.transfer_count
        assert store.token_count == dataset.nft_count
