"""Parallel dirty-token refinement: fan-out must be invisible.

The scheduler's process-pool fan-out re-runs per-token refinement and
detection in worker shards and merges the rows back in store order, so
a monitor with ``workers=N`` must produce *exactly* the stream a serial
monitor produces -- same alerts in the same sequence, same flagged
sets, same confirmed activities with the same evidence, tick for tick,
including through reorg retractions.  The serial fallback is pinned
too: a pool that cannot even start degrades to the serial path with a
``RuntimeWarning`` and identical output, never a crash or a divergence.

Runs on the pure-python tier as well (``REPRO_NO_CKERNEL=1`` in CI):
the fan-out payload carries the kernel toggle, so both tiers cross the
process boundary.
"""

from __future__ import annotations

import random
import warnings

import pytest

from repro.simulation.builder import build_default_world
from repro.simulation.config import SimulationConfig
from repro.simulation.reorg import apply_random_reorg
from repro.stream import StreamingMonitor


def _storm_run(world, monitor, seed: int, ticks: int = 10):
    """Drive a monitor through a seeded reorg storm; returns snapshots."""
    rng = random.Random(seed)
    snapshots = []
    for tick in range(ticks):
        if monitor.processed_block >= world.node.block_number:
            apply_random_reorg(
                world.chain, rng.randint(1, 8), rng, drop_probability=0.35
            )
        snapshots.append(
            monitor.advance(
                min(
                    world.node.block_number,
                    monitor.processed_block + rng.randint(10, 60),
                )
            )
        )
    snapshots.extend(monitor.run())
    return snapshots


def _stream_fingerprint(monitor):
    """Everything the stream promised, in value-identity form."""
    alerts = tuple(
        (alert.seq, alert.kind.name, alert.block, alert.nft)
        for alert in monitor.alerts
    )
    result = monitor.result()
    activities = sorted(
        (
            activity.nft,
            tuple(sorted(activity.accounts)),
            tuple(sorted(method.value for method in activity.methods)),
            activity.volume_wei,
            tuple(
                sorted(
                    repr(sorted(evidence.details.items()))
                    for evidence in activity.evidence
                )
            ),
        )
        for activity in result.activities
    )
    stages = [
        (stage.name, stage.nft_count, stage.component_count, stage.account_count)
        for stage in result.refinement.stages
    ]
    return alerts, activities, stages, frozenset(monitor.flagged_nfts)


def _matched_monitors(workers: int, seed: int = 13):
    """(serial, fanned) monitors driven through identical storms."""
    fingerprints = []
    for worker_count in (0, workers):
        world = build_default_world(SimulationConfig.tiny())
        monitor = StreamingMonitor.for_world(world, workers=worker_count)
        try:
            _storm_run(world, monitor, seed=seed)
            fingerprints.append(_stream_fingerprint(monitor))
        finally:
            monitor.close()
    return fingerprints


class TestFanOutParity:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_fanned_stream_is_bit_identical_to_serial(self, workers):
        serial, fanned = _matched_monitors(workers)
        assert fanned[0] == serial[0], "alert streams diverge"
        assert fanned[1] == serial[1], "confirmed activities diverge"
        assert fanned[2] == serial[2], "funnel stages diverge"
        assert fanned[3] == serial[3], "flagged sets diverge"

    def test_single_worker_never_builds_a_pool(self, tiny_world):
        monitor = StreamingMonitor.for_world(tiny_world, workers=1)
        try:
            monitor.run()
            assert monitor.scheduler._pool is None
        finally:
            monitor.close()

    def test_close_is_idempotent(self, tiny_world):
        monitor = StreamingMonitor.for_world(tiny_world, workers=2)
        monitor.run()
        monitor.close()
        monitor.close()
        # A closed monitor keeps ticking on the serial path.
        monitor.advance(monitor.processed_block)


class TestSerialFallback:
    def test_broken_pool_degrades_to_serial_with_a_warning(self, monkeypatch):
        """If the pool cannot start, the tick must complete serially,
        warn once, and never try the pool again."""
        import repro.engine.executor as executor

        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no processes for you")

        monkeypatch.setattr(executor, "ProcessPoolExecutor", ExplodingPool)

        world = build_default_world(SimulationConfig.tiny())
        serial_world = build_default_world(SimulationConfig.tiny())
        serial = StreamingMonitor.for_world(serial_world, workers=0)
        fanned = StreamingMonitor.for_world(world, workers=2)
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                fanned.run()
            fallbacks = [
                entry
                for entry in caught
                if issubclass(entry.category, RuntimeWarning)
                and "falling back to serial" in str(entry.message)
            ]
            assert fallbacks, "the degradation must be announced"
            assert fanned.scheduler._pool is not None
            assert fanned.scheduler._pool.failed
            serial.run()
            assert _stream_fingerprint(fanned) == _stream_fingerprint(serial)
        finally:
            fanned.close()
            serial.close()
