"""Stream/batch parity proofs.

Two layers, mirroring ``tests/engine/test_parity.py``:

* randomized transfer histories fed to the dirty-token scheduler
  block-by-block -- including blocks arriving out of order and empty
  ticks -- must produce exactly the batch columnar pipeline's result;
* full simulated worlds replayed through the :class:`StreamingMonitor`
  must match a batch ``WashTradingPipeline(engine="columnar")`` run
  bit-for-bit: candidate order, activities, evidence, funnel statistics,
  and the underlying ingested dataset itself.
"""

from __future__ import annotations

from collections import defaultdict

import pytest
from hypothesis import given, settings, strategies as st

from repro.chain.types import NFTKey, NULL_ADDRESS
from repro.core.detectors.base import DetectionContext
from repro.core.detectors.pipeline import WashTradingPipeline
from repro.engine.executor import TransactionView
from repro.engine.store import ColumnarTransferStore
from repro.ingest.dataset import NFTDataset, build_dataset
from repro.ingest.records import NFTTransfer
from repro.services.labels import LabelRegistry
from repro.stream import DatasetCursor, DirtyTokenScheduler, StreamingMonitor

REGULARS = [f"0xa{index}" for index in range(8)]
SERVICES = ["0xsvc0", "0xsvc1"]
CONTRACTS = ["0xct0", "0xct1"]
POOL = REGULARS + SERVICES + CONTRACTS + [NULL_ADDRESS]
CONTRACT_SET = frozenset(CONTRACTS)


def make_labels() -> LabelRegistry:
    labels = LabelRegistry()
    for address in SERVICES:
        labels.add(address, "exchange")
    return labels


def make_transfer(nft, sender, recipient, block, price, tag):
    return NFTTransfer(
        nft=nft,
        sender=sender,
        recipient=recipient,
        tx_hash=f"0xhash{tag}",
        block_number=block,
        timestamp=block,
        price_wei=price,
        gas_fee_wei=10,
        tx_sender=sender,
    )


def minimal_dataset(transfers_by_nft) -> NFTDataset:
    return NFTDataset(
        transfers_by_nft=transfers_by_nft,
        compliance=None,
        scan=None,
        account_transactions={},
        marketplace_addresses={},
    )


def candidate_key(component):
    return (
        component.nft.contract,
        component.nft.token_id,
        tuple(sorted(component.accounts)),
        tuple(sorted(transfer.tx_hash for transfer in component.transfers)),
    )


def activity_key(activity):
    return (
        activity.nft.contract,
        activity.nft.token_id,
        tuple(sorted(activity.accounts)),
        tuple(sorted(method.value for method in activity.methods)),
        tuple(sorted(t.tx_hash for t in activity.component.transfers)),
        tuple(
            sorted(
                repr(sorted(evidence.details.items()))
                for evidence in activity.evidence
            )
        ),
    )


@st.composite
def random_histories(draw):
    """A few NFTs with random transfers over the mixed account pool."""
    token_count = draw(st.integers(min_value=1, max_value=4))
    histories = {}
    tag = 0
    for token_id in range(token_count):
        nft = NFTKey(contract="0x" + "c" * 40, token_id=token_id)
        edge_count = draw(st.integers(min_value=0, max_value=14))
        transfers = []
        for _ in range(edge_count):
            sender = draw(st.sampled_from(POOL))
            recipient = draw(st.sampled_from(POOL))
            block = draw(st.integers(min_value=0, max_value=30))
            price = draw(st.sampled_from([0, 0, 10**18]))
            transfers.append(make_transfer(nft, sender, recipient, block, price, tag))
            tag += 1
        histories[nft] = transfers
    return histories


def replay_through_scheduler(histories, block_order):
    """Feed one transfer history to a scheduler, one block per tick."""
    labels = make_labels()
    is_contract = CONTRACT_SET.__contains__
    store = ColumnarTransferStore()
    scheduler = DirtyTokenScheduler(store, labels=labels, is_contract=is_contract)
    context = DetectionContext(
        dataset=TransactionView({}), labels=labels, is_contract=is_contract
    )

    by_block = defaultdict(lambda: defaultdict(list))
    for nft, transfers in histories.items():
        for transfer in transfers:
            by_block[transfer.block_number][nft].append(transfer)

    scheduler.process([], context)  # an empty tick before anything arrives
    for block in block_order:
        touched = store.extend(by_block.get(block, {}))
        scheduler.process(touched, context)
        scheduler.process([], context)  # every other tick is empty
    return scheduler.result()


def assert_results_match(stream, batch, ordered=False):
    assert stream.refinement.stages == batch.refinement.stages
    if ordered:
        assert list(map(candidate_key, stream.refinement.candidates)) == list(
            map(candidate_key, batch.refinement.candidates)
        )
        assert list(map(activity_key, stream.activities)) == list(
            map(activity_key, batch.activities)
        )
    else:
        assert sorted(map(candidate_key, stream.refinement.candidates)) == sorted(
            map(candidate_key, batch.refinement.candidates)
        )
        assert sorted(map(activity_key, stream.activities)) == sorted(
            map(activity_key, batch.activities)
        )
    assert sorted(map(candidate_key, stream.unconfirmed)) == sorted(
        map(candidate_key, batch.unconfirmed)
    )
    assert stream.count_by_method() == batch.count_by_method()
    assert stream.venn_counts() == batch.venn_counts()
    assert stream.washed_nfts() == batch.washed_nfts()


def run_batch_columnar(histories):
    labels = make_labels()
    return WashTradingPipeline(
        labels=labels, is_contract=CONTRACT_SET.__contains__, engine="columnar"
    ).run(minimal_dataset(histories))


@settings(max_examples=40, deadline=None)
@given(random_histories())
def test_blockwise_replay_matches_batch(histories):
    """In-order block-by-block feeding reproduces the batch result."""
    blocks = sorted(
        {t.block_number for transfers in histories.values() for t in transfers}
    )
    stream = replay_through_scheduler(histories, blocks)
    assert_results_match(stream, run_batch_columnar(histories))


@settings(max_examples=30, deadline=None)
@given(random_histories(), st.randoms(use_true_random=False))
def test_out_of_order_blocks_match_batch(histories, rng):
    """Blocks arriving in ANY order still converge to the batch result.

    This exercises the store's out-of-order append fallback (rows that
    sort before the current tail force a re-columnarization) and the
    scheduler's full-token recomputation.
    """
    blocks = sorted(
        {t.block_number for transfers in histories.values() for t in transfers}
    )
    shuffled = list(blocks)
    rng.shuffle(shuffled)
    stream = replay_through_scheduler(histories, shuffled)
    assert_results_match(stream, run_batch_columnar(histories))


# -- full world parity through the monitor ------------------------------------


@pytest.fixture(scope="module")
def tiny_batch(tiny_world):
    dataset = build_dataset(tiny_world.node, tiny_world.marketplace_addresses)
    result = WashTradingPipeline(
        labels=tiny_world.labels,
        is_contract=tiny_world.is_contract,
        engine="columnar",
    ).run(dataset)
    return dataset, result


class TestMonitorParity:
    @pytest.mark.parametrize("step_blocks", [1, 37], ids=["per-block", "windowed"])
    def test_full_replay_matches_batch(self, tiny_world, tiny_batch, step_blocks):
        dataset, batch = tiny_batch
        monitor = StreamingMonitor.for_world(tiny_world)
        monitor.run(step_blocks=step_blocks)
        assert monitor.processed_block == tiny_world.node.block_number
        assert_results_match(monitor.result(), batch, ordered=True)

    def test_ingested_dataset_matches_batch_build(self, tiny_world, tiny_batch):
        dataset, _ = tiny_batch
        cursor = DatasetCursor(tiny_world.node, tiny_world.marketplace_addresses)
        cursor.advance()
        assert cursor.transfers_by_nft == dataset.transfers_by_nft
        assert list(cursor.transfers_by_nft) == list(dataset.transfers_by_nft)
        assert cursor.account_transactions == dataset.account_transactions
        assert cursor.compliance.compliant == dataset.compliance.compliant
        assert cursor.compliance.non_compliant == dataset.compliance.non_compliant
        assert cursor.scan.event_count == dataset.scan.event_count
        view = cursor.as_dataset()
        assert view.transfer_count == dataset.transfer_count
        assert view.columnar_store() is cursor.store

    def test_result_is_stable_across_empty_ticks(self, tiny_world, tiny_batch):
        _, batch = tiny_batch
        monitor = StreamingMonitor.for_world(tiny_world)
        head = tiny_world.node.block_number
        monitor.advance(head // 2)
        # Out-of-order request (behind the cursor) and repeated-head
        # requests are no-ops.
        noop = monitor.advance(head // 4)
        assert noop.is_empty and noop.new_transfer_count == 0
        monitor.advance(head)
        repeat = monitor.advance(head)
        assert repeat.is_empty
        assert_results_match(monitor.result(), batch, ordered=True)

    def test_random_tick_boundaries_match_batch(self, tiny_world, tiny_batch):
        import random

        _, batch = tiny_batch
        rng = random.Random(1234)
        head = tiny_world.node.block_number
        monitor = StreamingMonitor.for_world(tiny_world)
        position = 0
        while position < head:
            position = min(position + rng.randint(1, 80), head)
            monitor.advance(position)
        assert_results_match(monitor.result(), batch, ordered=True)

    def test_mid_stream_state_matches_causal_prefix(self, tiny_world):
        """Halfway through the chain, the monitor equals a *causal* prefix.

        ``build_dataset(to_block=B)`` is causally clamped end to end:
        the scan stops at B *and* the per-account transaction collection
        filters out anything mined past B, so a plain prefix build
        against the full archive node is a valid mid-stream reference --
        no node-wrapping workaround required.
        """
        head = tiny_world.node.block_number
        upper = head // 2
        monitor = StreamingMonitor.for_world(tiny_world)
        monitor.run(to_block=upper, step_blocks=13)
        prefix = build_dataset(
            tiny_world.node,
            tiny_world.marketplace_addresses,
            to_block=upper,
        )
        batch = WashTradingPipeline(
            labels=tiny_world.labels,
            is_contract=tiny_world.is_contract,
            engine="columnar",
        ).run(prefix)
        assert_results_match(monitor.result(), batch, ordered=True)
        assert monitor.cursor.account_transactions == prefix.account_transactions
