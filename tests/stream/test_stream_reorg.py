"""Reorg-safety proofs for the streaming stack.

The acceptance bar (mirroring ``test_stream_parity`` for the append-only
case): after *any* randomized advance/reorg/advance sequence, the cursor
and scheduler state must equal a fresh batch build over the final
canonical chain -- candidates, activities, evidence, funnel statistics,
and the ingested dataset itself.  On top of the parity proofs this file
covers the revision semantics (confirmed -> retracted -> confirmed
flips, reorg/retraction alerts), head regressions, the journal bound,
and the tick-atomicity guarantee under a fault-injecting node.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.chain.block import Block
from repro.chain.node import EthereumNode
from repro.core.detectors.pipeline import WashTradingPipeline
from repro.ingest.dataset import build_dataset
from repro.simulation.builder import build_default_world
from repro.simulation.config import SimulationConfig
from repro.simulation.reorg import ReorgStorm, apply_random_reorg
from repro.stream import (
    AlertKind,
    DatasetCursor,
    ReorgTooDeepError,
    StreamingMonitor,
)
from tests.stream.test_stream_parity import activity_key, assert_results_match


def identity_key(activity):
    """What makes two announced activities the *same* activity."""
    return (
        activity.nft.contract,
        activity.nft.token_id,
        tuple(sorted(activity.accounts)),
        tuple(sorted(t.tx_hash for t in activity.component.transfers)),
    )


def fresh_world():
    """A private world per test: reorg tests mutate the chain."""
    return build_default_world(SimulationConfig.tiny())


def batch_over(world):
    """The parity reference: a fresh batch build over the current chain."""
    dataset = build_dataset(world.node, world.marketplace_addresses)
    result = WashTradingPipeline(
        labels=world.labels,
        is_contract=world.is_contract,
        engine="columnar",
    ).run(dataset)
    return dataset, result


def assert_dataset_parity(cursor, dataset):
    """The cursor's ingested state equals the batch-built dataset."""
    assert cursor.transfers_by_nft == dataset.transfers_by_nft
    assert list(cursor.transfers_by_nft) == list(dataset.transfers_by_nft)
    assert cursor.account_transactions == dataset.account_transactions
    assert cursor.compliance.compliant == dataset.compliance.compliant
    assert cursor.compliance.non_compliant == dataset.compliance.non_compliant
    assert cursor.scan.event_count == dataset.scan.event_count
    assert cursor.scan.emitting_contracts == dataset.scan.emitting_contracts
    assert cursor.store.transfer_count == dataset.transfer_count
    assert cursor.store.nfts() == list(dataset.transfers_by_nft)


class TestReorgParity:
    @pytest.mark.parametrize("depth", [1, 3, 8, 21, 55])
    def test_tail_reorg_after_full_follow(self, depth):
        """Follow to the head, reorg the tail, follow again: batch parity."""
        world = fresh_world()
        monitor = StreamingMonitor.for_world(world, max_reorg_depth=64)
        monitor.run(step_blocks=29)
        apply_random_reorg(
            world.chain,
            depth,
            random.Random(depth),
            drop_probability=0.4,
            delay_probability=0.3,
        )
        monitor.advance()
        dataset, batch = batch_over(world)
        assert_results_match(monitor.result(), batch, ordered=True)
        assert_dataset_parity(monitor.cursor, dataset)

    def test_mid_stream_reorg_parity(self):
        """A reorg cutting below the cursor mid-follow still converges."""
        world = fresh_world()
        head = world.node.block_number
        monitor = StreamingMonitor.for_world(world, max_reorg_depth=64)
        monitor.run(to_block=head // 2, step_blocks=17)
        # Cut below the cursor: visible rollback depth stays within the
        # journal even though the chain-level depth is larger.
        depth = head - monitor.processed_block + 20
        apply_random_reorg(
            world.chain, depth, random.Random(99), drop_probability=0.35
        )
        monitor.run(step_blocks=29)
        dataset, batch = batch_over(world)
        assert_results_match(monitor.result(), batch, ordered=True)
        assert_dataset_parity(monitor.cursor, dataset)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_reorg_storm_parity(self, seed):
        """Randomized advance/reorg/advance sequences match batch builds."""
        world = fresh_world()
        monitor = StreamingMonitor.for_world(world, max_reorg_depth=64)
        snapshots = []
        monitor.subscribe_snapshots(snapshots.append)
        storm = ReorgStorm(
            world,
            random.Random(seed),
            reorg_probability=0.45,
            max_depth=13,
            drop_probability=0.3,
            delay_probability=0.25,
            max_shorten=2,
            step_range=(5, 90),
        )
        summaries = storm.run(monitor)
        assert summaries, "the storm must actually reorg"

        dataset, batch = batch_over(world)
        assert_results_match(monitor.result(), batch, ordered=True)
        assert_dataset_parity(monitor.cursor, dataset)

        # The revision stream is diff-consistent: confirmations minus
        # retractions equals the final confirmed set, as a multiset of
        # activity identities.  (Identity = NFT + accounts + transfer
        # hashes: the scheduler diffs on it, and lets the *evidence* of a
        # still-confirmed activity evolve without re-announcing.)
        confirmed = Counter(
            identity_key(alert.activity)
            for alert in monitor.alerts
            if alert.kind is AlertKind.ACTIVITY_CONFIRMED
        )
        retracted = Counter(
            identity_key(alert.activity)
            for alert in monitor.alerts
            if alert.kind is AlertKind.ACTIVITY_RETRACTED
        )
        confirmed.subtract(retracted)
        final = Counter(identity_key(a) for a in monitor.result().activities)
        assert +confirmed == final

        running = 0
        for snap in snapshots:
            running += snap.newly_confirmed_count - snap.retracted_count
        assert running == monitor.scheduler.confirmed_activity_count
        assert running == batch.activity_count


class TestRevisionSemantics:
    def test_activity_flips_confirmed_retracted_confirmed(self):
        """Dropping then reinstating a wash tail retracts and re-confirms."""
        world = fresh_world()
        chain = world.chain
        head = world.node.block_number
        monitor = StreamingMonitor.for_world(world, max_reorg_depth=head + 2)
        monitor.run(step_blocks=29)
        _, original_batch = batch_over(world)

        target = max(
            monitor.result().activities,
            key=lambda activity: max(
                t.block_number for t in activity.component.transfers
            ),
        )
        target_key = activity_key(target)
        last_block = max(t.block_number for t in target.component.transfers)
        depth = head - last_block + 1

        # Reorg 1: same-length branch with every transaction dropped.
        empty_branch = [
            Block(number=block.number, timestamp=block.timestamp)
            for block in chain.blocks[-depth:]
        ]
        orphaned = chain.reorg(depth, empty_branch)
        snap = monitor.advance()
        assert snap.reorg_depth == depth
        kinds = [alert.kind for alert in snap.alerts]
        assert kinds[0] is AlertKind.REORG_DETECTED
        retracted_keys = {
            activity_key(alert.activity)
            for alert in snap.alerts
            if alert.kind is AlertKind.ACTIVITY_RETRACTED
        }
        assert target_key in retracted_keys
        assert target_key not in {
            activity_key(a) for a in monitor.result().activities
        }

        # Reorg 2: the original branch returns; the activity must too.
        chain.reorg(depth, orphaned)
        snap = monitor.advance()
        assert snap.reorg_depth == depth
        confirmed_keys = {
            activity_key(alert.activity)
            for alert in snap.alerts
            if alert.kind is AlertKind.ACTIVITY_CONFIRMED
        }
        assert target_key in confirmed_keys
        assert_results_match(monitor.result(), original_batch, ordered=True)

    def test_nft_is_reflagged_after_retraction(self):
        """An NFT emptied by a rollback is flagged again on re-confirmation."""
        world = fresh_world()
        chain = world.chain
        head = world.node.block_number
        monitor = StreamingMonitor.for_world(world, max_reorg_depth=head + 2)
        monitor.run(step_blocks=29)

        target = max(
            monitor.result().activities,
            key=lambda activity: max(
                t.block_number for t in activity.component.transfers
            ),
        )
        depth = head - max(t.block_number for t in target.component.transfers) + 1
        empty_branch = [
            Block(number=block.number, timestamp=block.timestamp)
            for block in chain.blocks[-depth:]
        ]
        orphaned = chain.reorg(depth, empty_branch)
        monitor.advance()
        flagged_after_rollback = set(monitor.flagged_nfts)
        chain.reorg(depth, orphaned)
        snap = monitor.advance()
        if target.nft not in flagged_after_rollback:
            assert any(
                alert.kind is AlertKind.NFT_FLAGGED and alert.nft == target.nft
                for alert in snap.alerts
            )
        assert target.nft in monitor.flagged_nfts

    def test_head_regression_is_a_rollback_not_a_noop(self):
        """A head behind the cursor is the reorg it looks like."""
        world = fresh_world()
        head = world.node.block_number
        monitor = StreamingMonitor.for_world(world, max_reorg_depth=64)
        monitor.run(step_blocks=29)
        world.chain.reorg(5)  # pure truncation: the head moves backwards
        snap = monitor.advance()
        assert snap.reorg_depth == 5
        assert not snap.is_empty
        assert monitor.processed_block == head - 5
        assert any(a.kind is AlertKind.REORG_DETECTED for a in snap.alerts)
        dataset, batch = batch_over(world)
        assert_results_match(monitor.result(), batch, ordered=True)
        assert_dataset_parity(monitor.cursor, dataset)

    @pytest.mark.parametrize("depth", [0, 64], ids=["no-journal", "journal"])
    def test_head_block_growth_is_not_a_reorg(self, depth):
        """Transactions appended to the open head block are forward growth.

        The chain keeps accepting transactions into the head block while
        its timestamp is current, changing the journaled tail hash; the
        cursor must re-ingest the grown block without reorg alerts --
        and without raising even when the journal is minimal.
        """
        world = fresh_world()
        monitor = StreamingMonitor.for_world(world, max_reorg_depth=depth)
        monitor.run(step_blocks=29)
        funder = "0x" + "f00d" * 10
        world.chain.faucet(funder, 10**21)
        world.chain.transact(
            sender=funder,
            to="0x" + "beef" * 10,
            value_wei=10**15,
            timestamp=world.chain.head_timestamp,  # grows the head block
        )
        snap = monitor.advance()
        assert snap.reorg_depth == 0
        assert not any(
            a.kind in (AlertKind.REORG_DETECTED, AlertKind.ACTIVITY_RETRACTED)
            for a in snap.alerts
        )
        dataset, batch = batch_over(world)
        assert_results_match(monitor.result(), batch, ordered=True)
        assert_dataset_parity(monitor.cursor, dataset)

    def test_growth_after_truncation_reorg_is_ingested(self):
        """The regressed head may regrow differently; the cursor must see it.

        Follows -> truncation reorg -> the reopened head block gains a
        transaction -> a later block seals it.  The stale-hash-cache
        failure mode is the divergence check matching the *pre-growth*
        hash and never ingesting the new transaction.
        """
        world = fresh_world()
        monitor = StreamingMonitor.for_world(world, max_reorg_depth=64)
        monitor.run(step_blocks=29)
        world.chain.reorg(1)
        funder = "0x" + "f00d" * 10
        world.chain.faucet(funder, 10**21)
        world.chain.transact(
            sender=funder,
            to="0x" + "beef" * 10,
            value_wei=10**15,
            timestamp=world.chain.head_timestamp,  # grows the reopened head
        )
        world.chain.transact(
            sender=funder,
            to="0x" + "beef" * 10,
            value_wei=10**15,
            timestamp=world.chain.head_timestamp + 12,  # seals it
        )
        monitor.run(step_blocks=29)
        dataset, batch = batch_over(world)
        assert_results_match(monitor.result(), batch, ordered=True)
        assert_dataset_parity(monitor.cursor, dataset)

    def test_caught_up_run_still_detects_reorg(self):
        """run() on a caught-up monitor must not skip the divergence check.

        A same-length replacement branch leaves the head where it was, so
        the stepping loop has nothing to scan -- the reorg is only
        visible through the hash comparison a tick performs.
        """
        world = fresh_world()
        monitor = StreamingMonitor.for_world(world, max_reorg_depth=64)
        monitor.run(step_blocks=29)
        apply_random_reorg(
            world.chain, 9, random.Random(42), drop_probability=0.6
        )
        snapshots = monitor.run(step_blocks=29)
        assert snapshots and snapshots[0].reorg_depth > 0
        dataset, batch = batch_over(world)
        assert_results_match(monitor.result(), batch, ordered=True)
        assert_dataset_parity(monitor.cursor, dataset)

    def test_future_start_block_waits_instead_of_raising(self):
        """A cursor parked above the head idles until the chain reaches it."""
        world = fresh_world()
        head = world.node.block_number
        cursor = DatasetCursor(
            world.node, world.marketplace_addresses, start_block=head + 50
        )
        tick = cursor.advance()
        assert tick.is_noop
        assert cursor.transfer_count == 0

    def test_stale_target_is_still_a_noop(self):
        """Asking for a block behind the cursor (head unchanged) stays safe."""
        world = fresh_world()
        head = world.node.block_number
        monitor = StreamingMonitor.for_world(world)
        monitor.advance(head // 2)
        snap = monitor.advance(head // 4)
        assert snap.is_empty
        assert snap.reorg_depth == 0

    def test_stale_target_does_not_suppress_reingest_after_growth(self):
        """A rollback tick always recovers what it removed, even when the
        caller's target is stale -- a grown head block must not be left
        un-ingested (and its activities transiently retracted)."""
        world = fresh_world()
        head = world.node.block_number
        monitor = StreamingMonitor.for_world(world)
        monitor.run(step_blocks=29)
        transfers_before = monitor.cursor.transfer_count
        funder = "0x" + "f00d" * 10
        world.chain.faucet(funder, 10**21)
        world.chain.transact(
            sender=funder,
            to="0x" + "beef" * 10,
            value_wei=10**15,
            timestamp=world.chain.head_timestamp,
        )
        snap = monitor.advance(head // 2)  # stale target during growth
        assert monitor.processed_block == head
        assert monitor.cursor.transfer_count >= transfers_before
        assert not any(
            a.kind is AlertKind.ACTIVITY_RETRACTED for a in snap.alerts
        )
        dataset, batch = batch_over(world)
        assert_results_match(monitor.result(), batch, ordered=True)
        assert_dataset_parity(monitor.cursor, dataset)

    def test_head_regressing_below_future_start_resets_cleanly(self):
        """A chain shrinking below the cursor's start block fully resets
        the cursor (everything it saw diverged) without crashing alert
        construction, then idles until the chain reaches the start again."""
        world = fresh_world()
        head = world.node.block_number
        start = head - 10
        monitor = StreamingMonitor.for_world(
            world, start_block=start, max_reorg_depth=64
        )
        monitor.run(step_blocks=5)
        world.chain.reorg(14)  # head regresses below start - 1
        snap = monitor.advance()
        assert snap.reorg_depth > 0
        assert monitor.cursor.transfer_count == 0
        for alert in snap.alerts:
            assert alert.block <= world.node.block_number
        follow_up = monitor.advance()
        assert follow_up.is_empty


class TestJournalBounds:
    def test_journal_is_bounded(self):
        world = fresh_world()
        cursor = DatasetCursor(
            world.node, world.marketplace_addresses, max_reorg_depth=8
        )
        cursor.advance()
        assert len(cursor._journal) == 9  # depth + 1: the fork block itself
        numbers = [entry.number for entry in cursor._journal]
        assert numbers == list(
            range(cursor.processed_block - 8, cursor.processed_block + 1)
        )
        assert cursor.journal_floor == cursor.processed_block - 8

    def test_reorg_within_bound_is_repaired(self):
        world = fresh_world()
        monitor = StreamingMonitor.for_world(world, max_reorg_depth=8)
        monitor.run(step_blocks=29)
        apply_random_reorg(
            world.chain, 8, random.Random(5), drop_probability=0.5
        )
        monitor.advance()
        dataset, batch = batch_over(world)
        assert_results_match(monitor.result(), batch, ordered=True)
        assert_dataset_parity(monitor.cursor, dataset)

    def test_reorg_below_journal_raises(self):
        world = fresh_world()
        monitor = StreamingMonitor.for_world(world, max_reorg_depth=4)
        monitor.run(step_blocks=29)
        world.chain.reorg(20)  # regress far below the journal floor
        with pytest.raises(ReorgTooDeepError):
            monitor.advance()

    def test_regressions_consume_the_window_and_fail_safely(self):
        """The journal window is anchored to the highest committed head.

        Rolling blocks back deletes their entries, so back-to-back
        shortening reorgs shrink the remaining window; once a fork falls
        below the floor the cursor must refuse loudly (ReorgTooDeepError)
        rather than repair incorrectly -- pinned here so the erosion
        semantics stay documented behavior, not an accident.
        """
        world = fresh_world()
        monitor = StreamingMonitor.for_world(world, max_reorg_depth=4)
        monitor.run(step_blocks=29)
        world.chain.reorg(3)  # truncation: window shrinks to 1 block
        monitor.advance()
        world.chain.reorg(3)  # fork now below the journal floor
        with pytest.raises(ReorgTooDeepError):
            monitor.advance()

    def test_full_journal_allows_total_divergence(self):
        """With the whole history journaled, even a genesis-deep reorg heals."""
        world = fresh_world()
        head = world.node.block_number
        monitor = StreamingMonitor.for_world(world, max_reorg_depth=head + 2)
        monitor.run(step_blocks=29)
        apply_random_reorg(
            world.chain,
            len(world.chain.blocks),
            random.Random(11),
            drop_probability=0.4,
        )
        monitor.advance()
        dataset, batch = batch_over(world)
        assert_results_match(monitor.result(), batch, ordered=True)
        assert_dataset_parity(monitor.cursor, dataset)


class FaultyNode(EthereumNode):
    """A node that starts failing on demand, per read endpoint."""

    def __init__(self, chain) -> None:
        super().__init__(chain)
        self.fail_history_after: int | None = None
        self.fail_block_at: int | None = None
        self._history_calls = 0

    def get_transactions_of(self, address):
        if self.fail_history_after is not None:
            self._history_calls += 1
            if self._history_calls > self.fail_history_after:
                raise ConnectionError("node fell over mid-tick")
        return super().get_transactions_of(address)

    def iter_blocks(self, from_block=0, to_block=None):
        for block in super().iter_blocks(from_block, to_block):
            if self.fail_block_at is not None and block.number >= self.fail_block_at:
                raise ConnectionError(f"node fell over at block {block.number}")
            yield block


class TestTickAtomicity:
    def cursor_fingerprint(self, cursor):
        return (
            cursor.next_block,
            cursor.transfer_count,
            len(cursor.scan.matches),
            sorted(cursor.scan.emitting_contracts),
            {nft: len(t) for nft, t in cursor.transfers_by_nft.items()},
            {a: len(t) for a, t in cursor.account_transactions.items()},
            sorted(cursor.store.nfts(), key=repr),
            len(cursor._journal),
        )

    @pytest.mark.parametrize("fault", ["history", "nth-block"])
    def test_failed_tick_leaves_cursor_retryable(self, fault):
        """A node failure mid-tick must not half-ingest or double-ingest."""
        world = fresh_world()
        head = world.node.block_number
        node = FaultyNode(world.chain)
        cursor = DatasetCursor(node, world.marketplace_addresses)
        cursor.advance(head // 3)
        before = self.cursor_fingerprint(cursor)

        if fault == "history":
            node.fail_history_after = 2
        else:
            node.fail_block_at = head // 3 + (head // 3) // 2
        with pytest.raises(ConnectionError):
            cursor.advance()
        assert self.cursor_fingerprint(cursor) == before

        node.fail_history_after = None
        node.fail_block_at = None
        cursor.advance()
        dataset, _ = batch_over(world)
        assert_dataset_parity(cursor, dataset)

    def test_failed_reorg_tick_still_reports_the_rollback(self):
        """The rollback's dirty set must survive a node failure mid-tick.

        The rollback is applied before the tick's staged reads; if those
        reads then fail, the retried tick finds the journal consistent --
        the report of what was rolled back has to be carried over, or the
        scheduler never retires the vanished tokens.
        """
        world = fresh_world()
        head = world.node.block_number
        node = FaultyNode(world.chain)
        monitor = StreamingMonitor(
            node=node,
            marketplace_addresses=world.marketplace_addresses,
            labels=world.labels,
            is_contract=world.is_contract,
            max_reorg_depth=head + 2,
        )
        monitor.run(step_blocks=29)
        target = max(
            monitor.result().activities,
            key=lambda activity: max(
                t.block_number for t in activity.component.transfers
            ),
        )
        depth = head - max(t.block_number for t in target.component.transfers) + 1
        empty_branch = [
            Block(number=block.number, timestamp=block.timestamp)
            for block in world.chain.blocks[-depth:]
        ]
        world.chain.reorg(depth, empty_branch)

        node.fail_block_at = head - depth + 1  # scan dies after the rollback
        with pytest.raises(ConnectionError):
            monitor.advance()
        node.fail_block_at = None

        snap = monitor.advance()
        assert snap.reorg_depth == depth
        retracted = {
            identity_key(alert.activity)
            for alert in snap.alerts
            if alert.kind is AlertKind.ACTIVITY_RETRACTED
        }
        assert identity_key(target) in retracted
        dataset, batch = batch_over(world)
        assert_results_match(monitor.result(), batch, ordered=True)
        assert_dataset_parity(monitor.cursor, dataset)
