"""Behavioural tests of the streaming monitor service layer.

Parity is pinned in ``test_stream_parity``; these tests cover the
service surface: subscriber callbacks, the three alert kinds, alert
latency, watchlists and per-tick snapshot bookkeeping.
"""

from __future__ import annotations

import pytest

from repro.core.activity import DetectionMethod
from repro.stream import Alert, AlertKind, MonitorSnapshot, StreamingMonitor


@pytest.fixture()
def driven(tiny_world):
    """A monitor fully driven over the tiny world, with capture hooks."""
    monitor = StreamingMonitor.for_world(tiny_world)
    seen_alerts = []
    seen_snapshots = []
    monitor.subscribe(seen_alerts.append)
    monitor.subscribe_snapshots(seen_snapshots.append)
    snapshots = monitor.run(step_blocks=29)
    return monitor, seen_alerts, seen_snapshots, snapshots


class TestAlerts:
    def test_every_washed_nft_is_flagged_exactly_once(self, driven, tiny_report):
        monitor, alerts, _, _ = driven
        flagged = [a for a in alerts if a.kind is AlertKind.NFT_FLAGGED]
        assert {alert.nft for alert in flagged} == tiny_report.result.washed_nfts()
        assert len(flagged) == len({alert.nft for alert in flagged})

    def test_confirmations_cover_final_activities(self, driven):
        monitor, alerts, _, _ = driven
        confirmed_nfts = {
            a.nft for a in alerts if a.kind is AlertKind.ACTIVITY_CONFIRMED
        }
        assert {activity.nft for activity in monitor.result().activities} <= (
            confirmed_nfts
        )

    def test_alert_latency_is_nonnegative_and_bounded(self, driven):
        _, alerts, _, _ = driven
        for alert in alerts:
            assert alert.latency_blocks >= 0
            last_trade = max(
                t.block_number for t in alert.activity.component.transfers
            )
            assert alert.block == last_trade + alert.latency_blocks

    def test_alerts_arrive_in_block_order(self, driven):
        _, alerts, _, _ = driven
        blocks = [alert.block for alert in alerts]
        assert blocks == sorted(blocks)

    def test_subscriber_stream_matches_history(self, driven):
        monitor, alerts, _, snapshots = driven
        assert alerts == monitor.alerts
        assert [a for snap in snapshots for a in snap.alerts] == alerts


class TestSequenceNumbers:
    def test_alert_seqs_are_gapless_positions(self, driven):
        monitor, alerts, _, _ = driven
        assert [alert.seq for alert in alerts] == list(range(len(alerts)))
        assert monitor.next_seq == len(alerts)

    def test_snapshot_dirty_nfts_match_count(self, driven):
        _, _, _, snapshots = driven
        for snap in snapshots:
            assert len(snap.dirty_nfts) == snap.dirty_token_count
            assert len(set(snap.dirty_nfts)) == len(snap.dirty_nfts)


class TestSubscriberIsolation:
    """A raising subscriber must not abort the tick or starve the rest."""

    def test_poison_alert_subscriber_is_isolated(self, tiny_world, tiny_report):
        monitor = StreamingMonitor.for_world(tiny_world)
        received = []

        def poison(alert):
            raise RuntimeError("subscriber exploded")

        monitor.subscribe(poison)  # registered FIRST: later ones must still run
        monitor.subscribe(received.append)
        snapshots = monitor.run(step_blocks=29)

        # The tick stream completed and stayed atomic...
        assert monitor.processed_block == tiny_world.node.block_number
        assert monitor.result().activity_count == (
            tiny_report.result.activity_count
        )
        # ...every alert still reached the healthy subscriber...
        assert received == monitor.alerts
        assert [a for snap in snapshots for a in snap.alerts] == monitor.alerts
        # ...and every failure was recorded, not swallowed silently.
        assert len(monitor.subscriber_errors) == len(monitor.alerts)
        first = monitor.subscriber_errors[0]
        assert first.callback is poison
        assert isinstance(first.error, RuntimeError)
        assert first.event == monitor.alerts[0]

    def test_poison_snapshot_subscriber_is_isolated(self, tiny_world):
        monitor = StreamingMonitor.for_world(tiny_world)
        seen = []

        @monitor.subscribe_snapshots
        def poison(snapshot):
            raise ValueError("snapshot subscriber exploded")

        monitor.subscribe_snapshots(seen.append)
        snapshots = monitor.run(step_blocks=50)
        assert seen == snapshots
        assert all(
            isinstance(error.error, ValueError)
            for error in monitor.subscriber_errors
        )
        assert len(monitor.subscriber_errors) == len(snapshots)

    def test_error_hook_is_invoked_and_itself_isolated(self, tiny_world):
        hooked = []

        def hook(record):
            hooked.append(record)
            raise RuntimeError("the error hook is broken too")

        monitor = StreamingMonitor.for_world(tiny_world, on_subscriber_error=hook)
        monitor.subscribe(lambda alert: (_ for _ in ()).throw(KeyError("boom")))
        monitor.run(step_blocks=50)
        assert hooked == monitor.subscriber_errors
        assert hooked  # the tiny world does raise alerts
        assert monitor.result().activity_count > 0


class TestWatchlist:
    def test_watchlist_hits_fire_for_confirmed_accounts(self, tiny_world, tiny_report):
        target = sorted(tiny_report.result.activities[0].accounts)[0]
        monitor = StreamingMonitor.for_world(tiny_world, watchlist=[target])
        monitor.run(step_blocks=29)
        hits = [a for a in monitor.alerts if a.kind is AlertKind.WATCHLIST_HIT]
        assert hits
        for hit in hits:
            assert hit.watched_accounts == frozenset({target})
            assert target in hit.accounts

    def test_watch_after_construction(self, tiny_world, tiny_report):
        target = sorted(tiny_report.result.activities[0].accounts)[0]
        monitor = StreamingMonitor.for_world(tiny_world)
        monitor.watch(target)
        monitor.run(step_blocks=29)
        assert any(a.kind is AlertKind.WATCHLIST_HIT for a in monitor.alerts)

    def test_unwatched_world_has_no_hits(self, driven):
        _, alerts, _, _ = driven
        assert not any(a.kind is AlertKind.WATCHLIST_HIT for a in alerts)


class TestSnapshots:
    def test_tick_numbering_and_ranges(self, driven):
        _, _, _, snapshots = driven
        assert [snap.tick for snap in snapshots] == list(
            range(1, len(snapshots) + 1)
        )
        for previous, current in zip(snapshots, snapshots[1:]):
            assert current.from_block == previous.to_block + 1

    def test_totals_track_final_state(self, driven, tiny_world):
        monitor, _, _, snapshots = driven
        last = snapshots[-1]
        result = monitor.result()
        assert last.to_block == tiny_world.node.block_number
        assert last.confirmed_activity_count == result.activity_count
        assert last.flagged_nft_count == len(result.washed_nfts())
        assert last.total_transfer_count == monitor.cursor.transfer_count
        assert sum(snap.new_transfer_count for snap in snapshots) == (
            last.total_transfer_count
        )

    def test_confirmed_count_is_diff_consistent(self, driven):
        _, _, _, snapshots = driven
        running = 0
        for snap in snapshots:
            running += snap.newly_confirmed_count - snap.retracted_count
        assert running == snapshots[-1].confirmed_activity_count

    def test_empty_tick_snapshot(self, tiny_world):
        monitor = StreamingMonitor.for_world(tiny_world)
        monitor.advance()
        snap = monitor.advance()
        assert snap.is_empty
        assert snap.alerts == ()
        assert snap.newly_confirmed_count == 0

    def test_run_rejects_bad_step(self, tiny_world):
        monitor = StreamingMonitor.for_world(tiny_world)
        with pytest.raises(ValueError):
            monitor.run(step_blocks=0)

    def test_run_clamps_target_beyond_head(self, tiny_world):
        """A target past the mined head terminates instead of spinning."""
        monitor = StreamingMonitor.for_world(tiny_world)
        head = tiny_world.node.block_number
        snapshots = monitor.run(to_block=head + 500, step_blocks=200)
        assert monitor.processed_block == head
        assert snapshots[-1].to_block == head


class TestSchedulerOptions:
    def test_enabled_methods_restrict_confirmations(self, tiny_world):
        methods = {DetectionMethod.SELF_TRADE}
        monitor = StreamingMonitor.for_world(tiny_world, enabled_methods=methods)
        monitor.run(step_blocks=50)
        result = monitor.result()
        assert result.activities  # the tiny world plants self-trades
        for activity in result.activities:
            assert activity.methods <= methods

    def test_repeated_scc_flips_propagate_across_tokens(self):
        """The cross-token repeated-SCC state updates without new transfers.

        Token B's candidate {x, y} is unconfirmed until token A's
        self-trade confirms the same account set (tick 2: B flips on
        with no transfer of its own), and is retracted again when A's
        component grows to {x, y, z} and the {x, y} set leaves the
        confirmed pool (tick 3: B flips off).
        """
        from repro.chain.types import NFTKey
        from repro.core.detectors.base import DetectionContext
        from repro.engine.executor import TransactionView
        from repro.engine.store import ColumnarTransferStore
        from repro.ingest.records import NFTTransfer
        from repro.services.labels import LabelRegistry
        from repro.stream import DirtyTokenScheduler

        def transfer(nft, sender, recipient, block, tag):
            return NFTTransfer(
                nft=nft,
                sender=sender,
                recipient=recipient,
                tx_hash=f"0xr{tag}",
                block_number=block,
                timestamp=block,
                price_wei=10**18,
                gas_fee_wei=1,
                tx_sender=sender,
            )

        nft_a = NFTKey(contract="0x" + "a" * 40, token_id=1)
        nft_b = NFTKey(contract="0x" + "a" * 40, token_id=2)
        store = ColumnarTransferStore()
        labels = LabelRegistry()
        scheduler = DirtyTokenScheduler(
            store,
            labels=labels,
            is_contract=lambda address: False,
            enabled_methods={
                DetectionMethod.SELF_TRADE,
                DetectionMethod.REPEATED_SCC,
            },
        )
        context = DetectionContext(
            dataset=TransactionView({}),
            labels=labels,
            is_contract=lambda address: False,
        )

        # Tick 1: B trades a cycle {x, y} with no self-trade -> unconfirmed.
        store.extend(
            {nft_b: [transfer(nft_b, "0xx", "0xy", 1, 0), transfer(nft_b, "0xy", "0xx", 2, 1)]}
        )
        report = scheduler.process([nft_b], context)
        assert not report.newly_confirmed
        assert scheduler.result().activity_count == 0

        # Tick 2: A's self-trade confirms the same {x, y} set -> both fire.
        store.extend(
            {
                nft_a: [
                    transfer(nft_a, "0xx", "0xy", 3, 2),
                    transfer(nft_a, "0xy", "0xx", 4, 3),
                    transfer(nft_a, "0xx", "0xx", 5, 4),
                ]
            }
        )
        report = scheduler.process([nft_a], context)
        assert {a.nft for a in report.newly_confirmed} == {nft_a, nft_b}
        by_nft = {a.nft: a for a in report.newly_confirmed}
        assert by_nft[nft_b].methods == {DetectionMethod.REPEATED_SCC}
        assert scheduler.result().activity_count == 2

        # Tick 3: A's component grows to {x, y, z}; the {x, y} set leaves
        # the confirmed pool and B's repeated confirmation is retracted.
        store.extend(
            {nft_a: [transfer(nft_a, "0xy", "0xz", 6, 5), transfer(nft_a, "0xz", "0xx", 7, 6)]}
        )
        report = scheduler.process([nft_a], context)
        assert report.retracted_count >= 1
        result = scheduler.result()
        assert {a.nft for a in result.activities} == {nft_a}
        assert scheduler.flagged_nfts == {nft_a}
