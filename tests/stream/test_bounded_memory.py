"""Bounded-memory cursor mode (``retain_scan_matches=False``).

The default cursor retains every raw (transaction, log) scan match for
batch-view parity of ``as_dataset()`` -- O(chain) growth a long-running
monitor cannot afford.  Bounded mode journals rows as usual but drops
the raw matches once their blocks fall out of the rollback journal;
the pinned contract: match retention stays O(journal) while *detection*
parity (results, funnel, dataset rows, account histories, even the
scan's event counter) holds exactly, reorgs included.
"""

from __future__ import annotations

import random

import pytest

from repro.core.detectors.pipeline import WashTradingPipeline
from repro.ingest.dataset import build_dataset
from repro.simulation.builder import build_default_world
from repro.simulation.config import SimulationConfig
from repro.simulation.reorg import ReorgStorm, apply_random_reorg
from repro.stream import DatasetCursor, StreamingMonitor
from tests.stream.test_stream_parity import assert_results_match


def fresh_world():
    return build_default_world(SimulationConfig.tiny())


def batch_over(world):
    dataset = build_dataset(world.node, world.marketplace_addresses)
    result = WashTradingPipeline(
        labels=world.labels,
        is_contract=world.is_contract,
        engine="columnar",
    ).run(dataset)
    return dataset, result


def journaled_match_count(cursor) -> int:
    return sum(entry.match_count for entry in cursor._journal)


def assert_bounded_state_parity(cursor, dataset):
    """Everything detection reads matches the batch build; matches are
    trimmed to the journal but their *count* stays exact."""
    assert cursor.transfers_by_nft == dataset.transfers_by_nft
    assert cursor.account_transactions == dataset.account_transactions
    assert cursor.compliance.compliant == dataset.compliance.compliant
    assert cursor.compliance.non_compliant == dataset.compliance.non_compliant
    assert cursor.scan.emitting_contracts == dataset.scan.emitting_contracts
    assert cursor.scan.event_count == dataset.scan.event_count
    assert cursor.store.transfer_count == dataset.transfer_count
    assert len(cursor.scan.matches) == journaled_match_count(cursor)
    assert len(cursor.scan.matches) <= len(dataset.scan.matches)


class TestBoundedMemory:
    @pytest.mark.parametrize("depth", [0, 8, 64])
    def test_retention_is_o_journal_with_full_parity(self, depth):
        """Block-by-block follow: matches stay O(journal), results exact."""
        world = fresh_world()
        monitor = StreamingMonitor.for_world(
            world, retain_scan_matches=False, max_reorg_depth=depth
        )
        peak = 0
        for _ in range(world.node.block_number + 1):
            monitor.advance(monitor.cursor.next_block)
            peak = max(peak, len(monitor.cursor.scan.matches))
            assert len(monitor.cursor.scan.matches) == journaled_match_count(
                monitor.cursor
            )
        dataset, batch = batch_over(world)
        assert_results_match(monitor.result(), batch, ordered=True)
        assert_bounded_state_parity(monitor.cursor, dataset)
        # The bound is the journal's own span, not the chain's.
        assert peak <= len(dataset.scan.matches)
        if depth == 0:
            assert peak <= max(
                sum(
                    1
                    for tx, log in dataset.scan.matches
                    if tx.block_number == block
                )
                for block in range(world.node.block_number + 1)
            ) + 1

    def test_default_mode_still_retains_everything(self):
        world = fresh_world()
        cursor = DatasetCursor(world.node, world.marketplace_addresses)
        cursor.advance()
        dataset, _ = batch_over(world)
        assert cursor.scan.matches == dataset.scan.matches
        assert cursor.scan.pruned_count == 0

    def test_reorg_rollback_still_works_when_bounded(self):
        """Rollbacks only ever touch journaled (still-retained) matches."""
        world = fresh_world()
        monitor = StreamingMonitor.for_world(
            world, retain_scan_matches=False, max_reorg_depth=64
        )
        monitor.run(step_blocks=17)
        for seed, depth in ((1, 5), (2, 21), (3, 55)):
            apply_random_reorg(
                world.chain,
                depth,
                random.Random(seed),
                drop_probability=0.4,
                delay_probability=0.3,
            )
            monitor.run(step_blocks=23)
            dataset, batch = batch_over(world)
            assert_results_match(monitor.result(), batch, ordered=True)
            assert_bounded_state_parity(monitor.cursor, dataset)

    def test_randomized_storm_parity_when_bounded(self):
        world = fresh_world()
        monitor = StreamingMonitor.for_world(
            world, retain_scan_matches=False, max_reorg_depth=64
        )
        storm = ReorgStorm(
            world,
            random.Random(17),
            reorg_probability=0.4,
            max_depth=13,
            drop_probability=0.3,
            delay_probability=0.25,
            max_shorten=2,
            step_range=(5, 90),
        )
        assert storm.run(monitor)
        dataset, batch = batch_over(world)
        assert_results_match(monitor.result(), batch, ordered=True)
        assert_bounded_state_parity(monitor.cursor, dataset)

    def test_serving_over_a_bounded_monitor(self):
        """The serve layer composes with bounded-memory ingest."""
        from repro.serve import ServeService, serving_parity_mismatches

        world = fresh_world()
        service = ServeService.for_world(
            world, retain_scan_matches=False, max_reorg_depth=16
        )
        service.run(step_blocks=29)
        _, batch = batch_over(world)
        assert serving_parity_mismatches(service.query, batch) == []
        assert len(service.monitor.cursor.scan.matches) == journaled_match_count(
            service.monitor.cursor
        )
