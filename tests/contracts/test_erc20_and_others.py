"""Unit tests for ERC-20, ERC-1155, non-compliant contracts and the registry."""

from __future__ import annotations

import pytest

from repro.chain.chain import Chain
from repro.chain.errors import ContractExecutionError
from repro.chain.types import Call
from repro.contracts.base import ERC721_INTERFACE_ID
from repro.contracts.erc20 import ERC20Token
from repro.contracts.erc1155 import ERC1155Collection
from repro.contracts.noncompliant import NonCompliantNFTContract
from repro.contracts.registry import ContractRegistry
from repro.utils.currency import eth_to_wei

ALICE = "0x" + "a" * 40
BOB = "0x" + "b" * 40


@pytest.fixture()
def chain():
    fresh = Chain(genesis_timestamp=1_000_000)
    fresh.faucet(ALICE, eth_to_wei(10))
    fresh.faucet(BOB, eth_to_wei(10))
    return fresh


class TestERC20:
    def test_mint_and_transfer(self, chain):
        token = ERC20Token("Wrapped Ether", "WETH")
        address = chain.deploy_contract(token)
        chain.transact(sender=ALICE, to=address, call=Call("mint", {"to": ALICE, "amount": 100}), timestamp=1_000_100)
        chain.transact(sender=ALICE, to=address, call=Call("transfer", {"to": BOB, "amount": 40}), timestamp=1_000_200)
        assert token.balanceOf(ALICE) == 60
        assert token.balanceOf(BOB) == 40
        assert token.totalSupply() == 100

    def test_transfer_logs_have_three_topics(self, chain):
        token = ERC20Token("Wrapped Ether", "WETH")
        address = chain.deploy_contract(token)
        tx = chain.transact(
            sender=ALICE, to=address, call=Call("mint", {"to": ALICE, "amount": 5}), timestamp=1_000_100
        )
        assert len(tx.logs[0].topics) == 3
        assert tx.logs[0].is_erc20_transfer

    def test_overdraw_reverts(self, chain):
        token = ERC20Token("Wrapped Ether", "WETH")
        address = chain.deploy_contract(token)
        with pytest.raises(ContractExecutionError):
            chain.transact(
                sender=ALICE, to=address, call=Call("transfer", {"to": BOB, "amount": 1}), timestamp=1_000_100
            )

    def test_burn_reduces_supply(self, chain):
        token = ERC20Token("Wrapped Ether", "WETH")
        address = chain.deploy_contract(token)
        chain.transact(sender=ALICE, to=address, call=Call("mint", {"to": ALICE, "amount": 10}), timestamp=1_000_100)
        chain.transact(sender=ALICE, to=address, call=Call("burn", {"amount": 4}), timestamp=1_000_200)
        assert token.totalSupply() == 6

    def test_not_erc721_compliant(self, chain):
        token = ERC20Token("Wrapped Ether", "WETH")
        assert not token.supportsInterface(ERC721_INTERFACE_ID)


class TestERC1155:
    def test_mint_and_transfer_units(self, chain):
        collection = ERC1155Collection("Game Items")
        address = chain.deploy_contract(collection)
        chain.transact(
            sender=ALICE, to=address, call=Call("mint", {"to": ALICE, "token_id": 7, "amount": 5}), timestamp=1_000_100
        )
        chain.transact(
            sender=ALICE,
            to=address,
            call=Call("safeTransferFrom", {"sender": ALICE, "to": BOB, "token_id": 7, "amount": 2}),
            timestamp=1_000_200,
        )
        assert collection.balanceOf(ALICE, 7) == 3
        assert collection.balanceOf(BOB, 7) == 2

    def test_logs_use_distinct_signature(self, chain):
        collection = ERC1155Collection("Game Items")
        address = chain.deploy_contract(collection)
        tx = chain.transact(
            sender=ALICE, to=address, call=Call("mint", {"to": ALICE, "token_id": 7, "amount": 5}), timestamp=1_000_100
        )
        assert tx.logs[0].is_erc1155_transfer
        assert not tx.logs[0].is_erc721_transfer

    def test_overdraw_reverts(self, chain):
        collection = ERC1155Collection("Game Items")
        address = chain.deploy_contract(collection)
        with pytest.raises(ContractExecutionError):
            chain.transact(
                sender=ALICE,
                to=address,
                call=Call("safeTransferFrom", {"sender": ALICE, "to": BOB, "token_id": 1, "amount": 1}),
                timestamp=1_000_100,
            )

    def test_burn_reduces_balance(self, chain):
        collection = ERC1155Collection("Game Items")
        address = chain.deploy_contract(collection)
        chain.transact(
            sender=ALICE, to=address, call=Call("mint", {"to": ALICE, "token_id": 7, "amount": 5}), timestamp=1_000_100
        )
        tx = chain.transact(
            sender=ALICE,
            to=address,
            call=Call("burn", {"sender": ALICE, "token_id": 7, "amount": 3}),
            timestamp=1_000_200,
        )
        assert collection.balanceOf(ALICE, 7) == 2
        # A burn is a TransferSingle to the null address.
        assert tx.logs[0].is_erc1155_transfer
        assert tx.logs[0].topics[3] == "0x" + "0" * 40


class TestERC1155Batch:
    def test_mint_batch_credits_every_id(self, chain):
        collection = ERC1155Collection("Game Items")
        address = chain.deploy_contract(collection)
        chain.transact(
            sender=ALICE,
            to=address,
            call=Call("mintBatch", {"to": ALICE, "token_ids": [1, 2, 9], "amounts": [5, 3, 1]}),
            timestamp=1_000_100,
        )
        assert collection.balanceOf(ALICE, 1) == 5
        assert collection.balanceOf(ALICE, 2) == 3
        assert collection.balanceOf(ALICE, 9) == 1

    def test_transfer_batch_log_shape(self, chain):
        """Four topics like ERC-721 Transfer; only the signature differs."""
        from repro.utils.hashing import ERC1155_TRANSFER_BATCH_SIGNATURE, event_signature

        collection = ERC1155Collection("Game Items")
        address = chain.deploy_contract(collection)
        tx = chain.transact(
            sender=ALICE,
            to=address,
            call=Call("mintBatch", {"to": ALICE, "token_ids": [1, 2], "amounts": [5, 3]}),
            timestamp=1_000_100,
        )
        (log,) = tx.logs
        assert len(log.topics) == 4
        assert log.topics[0] == ERC1155_TRANSFER_BATCH_SIGNATURE
        assert log.topics[0] == event_signature(
            "TransferBatch(address,address,address,uint256[],uint256[])"
        )
        assert log.data == {"ids": (1, 2), "values": (5, 3)}
        assert log.is_erc1155_transfer
        assert not log.is_erc721_transfer

    def test_burn_batch_checks_all_balances_first(self, chain):
        collection = ERC1155Collection("Game Items")
        address = chain.deploy_contract(collection)
        chain.transact(
            sender=ALICE,
            to=address,
            call=Call("mintBatch", {"to": ALICE, "token_ids": [1, 2], "amounts": [5, 1]}),
            timestamp=1_000_100,
        )
        # Second id overdraws: the whole batch reverts, nothing is debited.
        with pytest.raises(ContractExecutionError):
            chain.transact(
                sender=ALICE,
                to=address,
                call=Call("burnBatch", {"sender": ALICE, "token_ids": [1, 2], "amounts": [2, 4]}),
                timestamp=1_000_200,
            )
        assert collection.balanceOf(ALICE, 1) == 5
        assert collection.balanceOf(ALICE, 2) == 1
        chain.transact(
            sender=ALICE,
            to=address,
            call=Call("burnBatch", {"sender": ALICE, "token_ids": [1], "amounts": [2]}),
            timestamp=1_000_300,
        )
        assert collection.balanceOf(ALICE, 1) == 3

    def test_malformed_batches_revert(self, chain):
        collection = ERC1155Collection("Game Items")
        address = chain.deploy_contract(collection)
        for bad in (
            {"to": ALICE, "token_ids": [], "amounts": []},
            {"to": ALICE, "token_ids": [1, 2], "amounts": [5]},
            {"to": ALICE, "token_ids": [1], "amounts": [0]},
        ):
            with pytest.raises(ContractExecutionError):
                chain.transact(
                    sender=ALICE, to=address, call=Call("mintBatch", bad), timestamp=1_000_100
                )

    def test_batch_events_invisible_to_erc721_scan(self, chain):
        """TransferBatch churn must not register as ERC-721 transfers."""
        from repro.chain.node import EthereumNode
        from repro.ingest.transfer_scan import scan_erc721_transfer_logs

        collection = ERC1155Collection("Game Items")
        address = chain.deploy_contract(collection)
        chain.transact(
            sender=ALICE,
            to=address,
            call=Call("mintBatch", {"to": ALICE, "token_ids": [1, 2, 3], "amounts": [5, 3, 2]}),
            timestamp=1_000_100,
        )
        chain.transact(
            sender=ALICE,
            to=address,
            call=Call("burnBatch", {"sender": ALICE, "token_ids": [1, 3], "amounts": [2, 1]}),
            timestamp=1_000_200,
        )
        scan = scan_erc721_transfer_logs(EthereumNode(chain))
        assert scan.event_count == 0


class TestNonCompliant:
    def test_emits_erc721_shaped_logs(self, chain):
        contract = NonCompliantNFTContract("Legacy")
        address = chain.deploy_contract(contract)
        tx = chain.transact(sender=ALICE, to=address, call=Call("mint", {"to": ALICE}), timestamp=1_000_100)
        assert tx.logs[0].is_erc721_transfer

    def test_does_not_claim_erc721_support(self, chain):
        contract = NonCompliantNFTContract("Legacy")
        assert contract.supportsInterface(ERC721_INTERFACE_ID) is False

    def test_broken_probe_raises(self, chain):
        contract = NonCompliantNFTContract("Legacy", broken_erc165=True)
        with pytest.raises(ValueError):
            contract.supportsInterface(ERC721_INTERFACE_ID)


class TestRegistry:
    def test_register_and_lookup(self):
        registry = ContractRegistry()
        registry.register("0x" + "1" * 40, kind="erc721", name="Apes")
        assert registry.name_of("0x" + "1" * 40) == "Apes"
        assert "0x" + "1" * 40 in registry
        assert len(list(registry.of_kind("erc721"))) == 1

    def test_unknown_lookup_defaults(self):
        registry = ContractRegistry()
        assert registry.get("0x" + "2" * 40) is None
        assert registry.name_of("0x" + "2" * 40) == "0x" + "2" * 40
        assert registry.name_of("0x" + "2" * 40, default="n/a") == "n/a"

    def test_len_and_iteration(self):
        registry = ContractRegistry()
        registry.register("0x" + "1" * 40, kind="erc721", name="A")
        registry.register("0x" + "2" * 40, kind="dex", name="B")
        assert len(registry) == 2
        assert {info.name for info in registry} == {"A", "B"}
