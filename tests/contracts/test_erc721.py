"""Unit tests for the ERC-721 collection contract."""

from __future__ import annotations

import pytest

from repro.chain.chain import Chain
from repro.chain.errors import ContractExecutionError
from repro.chain.types import Call, NULL_ADDRESS
from repro.contracts.base import ERC1155_INTERFACE_ID, ERC165_INTERFACE_ID, ERC721_INTERFACE_ID
from repro.contracts.erc721 import ERC721Collection
from repro.utils.currency import eth_to_wei

ALICE = "0x" + "a" * 40
BOB = "0x" + "b" * 40
CAROL = "0x" + "c" * 40


@pytest.fixture()
def deployed():
    chain = Chain(genesis_timestamp=1_000_000)
    for account in (ALICE, BOB, CAROL):
        chain.faucet(account, eth_to_wei(10))
    collection = ERC721Collection("Apes", "APE", creation_timestamp=1_000_000)
    address = chain.deploy_contract(collection)
    return chain, collection, address


def mint(chain, address, owner, ts=1_000_100):
    return chain.transact(sender=owner, to=address, call=Call("mint", {"to": owner}), timestamp=ts)


class TestMint:
    def test_mint_assigns_sequential_ids(self, deployed):
        chain, collection, address = deployed
        mint(chain, address, ALICE)
        mint(chain, address, BOB)
        assert collection.ownerOf(1) == ALICE
        assert collection.ownerOf(2) == BOB
        assert collection.totalSupply() == 2

    def test_mint_emits_transfer_from_null(self, deployed):
        chain, _, address = deployed
        tx = mint(chain, address, ALICE)
        log = tx.logs[0]
        assert log.topics[1] == NULL_ADDRESS
        assert log.topics[2] == ALICE

    def test_mint_duplicate_id_reverts(self, deployed):
        chain, _, address = deployed
        chain.transact(
            sender=ALICE, to=address, call=Call("mint", {"to": ALICE, "token_id": 5}), timestamp=1_000_100
        )
        with pytest.raises(ContractExecutionError):
            chain.transact(
                sender=BOB, to=address, call=Call("mint", {"to": BOB, "token_id": 5}), timestamp=1_000_200
            )

    def test_balance_of_counts_held_tokens(self, deployed):
        chain, collection, address = deployed
        mint(chain, address, ALICE)
        mint(chain, address, ALICE, ts=1_000_200)
        assert collection.balanceOf(ALICE) == 2
        assert collection.balanceOf(BOB) == 0


class TestTransfer:
    def test_owner_can_transfer(self, deployed):
        chain, collection, address = deployed
        mint(chain, address, ALICE)
        chain.transact(
            sender=ALICE,
            to=address,
            call=Call("transferFrom", {"sender": ALICE, "to": BOB, "token_id": 1}),
            timestamp=1_000_200,
        )
        assert collection.ownerOf(1) == BOB
        assert collection.balanceOf(ALICE) == 0
        assert collection.balanceOf(BOB) == 1

    def test_non_owner_cannot_transfer(self, deployed):
        chain, _, address = deployed
        mint(chain, address, ALICE)
        with pytest.raises(ContractExecutionError):
            chain.transact(
                sender=BOB,
                to=address,
                call=Call("transferFrom", {"sender": ALICE, "to": BOB, "token_id": 1}),
                timestamp=1_000_200,
            )

    def test_approved_operator_can_transfer(self, deployed):
        chain, collection, address = deployed
        mint(chain, address, ALICE)
        chain.transact(
            sender=ALICE,
            to=address,
            call=Call("setApprovalForAll", {"operator": CAROL, "approved": True}),
            timestamp=1_000_200,
        )
        assert collection.is_approved(ALICE, CAROL)
        chain.transact(
            sender=CAROL,
            to=address,
            call=Call("transferFrom", {"sender": ALICE, "to": BOB, "token_id": 1}),
            timestamp=1_000_300,
        )
        assert collection.ownerOf(1) == BOB

    def test_revoked_operator_cannot_transfer(self, deployed):
        chain, _, address = deployed
        mint(chain, address, ALICE)
        for approved in (True, False):
            chain.transact(
                sender=ALICE,
                to=address,
                call=Call("setApprovalForAll", {"operator": CAROL, "approved": approved}),
                timestamp=1_000_200,
            )
        with pytest.raises(ContractExecutionError):
            chain.transact(
                sender=CAROL,
                to=address,
                call=Call("transferFrom", {"sender": ALICE, "to": BOB, "token_id": 1}),
                timestamp=1_000_300,
            )

    def test_self_transfer_is_allowed(self, deployed):
        chain, collection, address = deployed
        mint(chain, address, ALICE)
        tx = chain.transact(
            sender=ALICE,
            to=address,
            call=Call("transferFrom", {"sender": ALICE, "to": ALICE, "token_id": 1}),
            timestamp=1_000_200,
        )
        assert collection.ownerOf(1) == ALICE
        assert tx.logs[0].topics[1] == tx.logs[0].topics[2] == ALICE

    def test_transfer_of_unknown_token_reverts(self, deployed):
        chain, _, address = deployed
        with pytest.raises(ContractExecutionError):
            chain.transact(
                sender=ALICE,
                to=address,
                call=Call("transferFrom", {"sender": ALICE, "to": BOB, "token_id": 42}),
                timestamp=1_000_100,
            )


class TestBurn:
    def test_burn_removes_token(self, deployed):
        chain, collection, address = deployed
        mint(chain, address, ALICE)
        chain.transact(
            sender=ALICE, to=address, call=Call("burn", {"token_id": 1}), timestamp=1_000_200
        )
        assert collection.ownerOf(1) is None

    def test_only_owner_can_burn(self, deployed):
        chain, _, address = deployed
        mint(chain, address, ALICE)
        with pytest.raises(ContractExecutionError):
            chain.transact(
                sender=BOB, to=address, call=Call("burn", {"token_id": 1}), timestamp=1_000_200
            )


class TestIntrospection:
    def test_supports_erc721_and_erc165(self, deployed):
        _, collection, _ = deployed
        assert collection.supportsInterface(ERC721_INTERFACE_ID)
        assert collection.supportsInterface(ERC165_INTERFACE_ID)
        assert not collection.supportsInterface(ERC1155_INTERFACE_ID)

    def test_metadata_views(self, deployed):
        _, collection, address = deployed
        assert collection.name() == "Apes"
        assert collection.symbol() == "APE"
        assert collection.key_of(3).contract == address
