"""Unit and invariant tests for the workload generator."""

from __future__ import annotations

import pytest

from repro.chain.types import NULL_ADDRESS
from repro.simulation.builder import WorldBuilder, build_default_world
from repro.simulation.config import SimulationConfig
from repro.simulation.ground_truth import (
    DETECTABLE_KINDS,
    FILTERED_KINDS,
    GroundTruth,
    KIND_REWARD_FARM,
    PlannedActivity,
)
from repro.simulation.timeline import TimeAllocator
from repro.utils.timeutil import SECONDS_PER_DAY, SIMULATION_EPOCH
from repro.chain.types import NFTKey


class TestTimeAllocator:
    def test_timestamps_strictly_increase(self):
        clock = TimeAllocator()
        stamps = [clock.next_timestamp(day) for day in (1, 1, 1, 2, 2, 5)]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == len(stamps)

    def test_timestamp_lands_in_requested_day(self):
        clock = TimeAllocator()
        timestamp = clock.next_timestamp(3)
        assert clock.day_start(3) <= timestamp < clock.day_start(4)

    def test_never_goes_backwards_even_for_earlier_day(self):
        clock = TimeAllocator()
        late = clock.next_timestamp(10)
        early = clock.next_timestamp(2)
        assert early > late

    def test_jump_to_day(self):
        clock = TimeAllocator()
        clock.jump_to_day(7)
        assert clock.last_timestamp == clock.day_start(7)
        assert clock.current_day() == 7


class TestConfig:
    def test_presets_shrink(self):
        default = SimulationConfig()
        small = SimulationConfig.small()
        tiny = SimulationConfig.tiny()
        assert tiny.duration_days < small.duration_days < default.duration_days
        assert tiny.wash_mix.total_planted < small.wash_mix.total_planted

    def test_total_planted_counts_only_detectable(self):
        mix = SimulationConfig().wash_mix
        assert mix.total_planted == (
            mix.looksrare_reward_farms
            + mix.rarible_reward_farms
            + mix.opensea_resale_pumps
            + mix.opensea_small_washes
            + mix.superrare_washes
            + mix.decentraland_washes
            + mix.self_trades
            + mix.rarity_games
            + mix.offmarket_p2p_washes
        )

    def test_venue_popularity_is_a_distribution(self):
        config = SimulationConfig()
        assert sum(config.venue_popularity.values()) == pytest.approx(1.0)


class TestGroundTruth:
    def test_kind_partition(self):
        assert not (DETECTABLE_KINDS & FILTERED_KINDS)

    def test_record_and_score(self):
        truth = GroundTruth()
        nft = NFTKey(contract="0x" + "1" * 40, token_id=1)
        truth.record(
            PlannedActivity(
                kind=KIND_REWARD_FARM,
                nft=nft,
                accounts=frozenset(["0xa"]),
                venue="LooksRare",
                start_day=1,
                end_day=2,
            )
        )
        assert len(truth.detectable()) == 1
        score = truth.match_against([nft])
        assert score.recall == 1.0
        assert truth.match_against([]).recall == 0.0


class TestBuiltWorld:
    def test_deterministic_for_same_seed(self):
        first = build_default_world(SimulationConfig.tiny(seed=9))
        second = build_default_world(SimulationConfig.tiny(seed=9))
        assert first.chain.transaction_count() == second.chain.transaction_count()
        assert len(first.ground_truth.activities) == len(second.ground_truth.activities)
        assert [b.timestamp for b in first.chain.blocks] == [b.timestamp for b in second.chain.blocks]

    def test_different_seed_differs(self):
        first = build_default_world(SimulationConfig.tiny(seed=9))
        second = build_default_world(SimulationConfig.tiny(seed=10))
        assert first.chain.transaction_count() != second.chain.transaction_count()

    def test_world_inventory(self, tiny_world):
        assert len(tiny_world.marketplaces.venues) == 6
        assert len(tiny_world.exchanges) >= 2
        assert tiny_world.collections
        assert tiny_world.ground_truth.detectable()
        assert "otc-desk" in tiny_world.defi_addresses

    def test_block_timestamps_monotonic(self, tiny_world):
        timestamps = [block.timestamp for block in tiny_world.chain.blocks]
        assert timestamps == sorted(timestamps)

    def test_no_negative_balances(self, tiny_world):
        assert all(
            account.balance_wei >= 0 for account in tiny_world.chain.state.accounts()
        )

    def test_planted_activities_span_all_kinds(self, small_world):
        kinds = {activity.kind for activity in small_world.ground_truth.activities}
        assert DETECTABLE_KINDS <= kinds

    def test_wash_targets_use_paper_collection_names(self, tiny_world):
        wash_names = {c.name for c in tiny_world.collections if c.is_wash_target}
        assert wash_names & {"Meebits", "Terraforms", "Loot", "Rollbots", "Avastar"}

    def test_market_context_is_complete(self, tiny_world):
        context = tiny_world.market_context()
        assert set(context.marketplace_addresses) == set(context.treasury_addresses)
        assert set(context.distributor_addresses) == {"LooksRare", "Rarible"}
        assert context.non_reward_venues()
        assert context.reward_venues() == ["LooksRare", "Rarible"]

    def test_collection_creation_timestamps_exposed(self, tiny_world):
        creation = tiny_world.collection_creation_timestamps()
        assert creation
        assert all(ts >= SIMULATION_EPOCH for ts in creation.values())

    def test_service_accounts_are_labelled(self, tiny_world):
        for exchange in tiny_world.exchanges:
            assert tiny_world.labels.is_graph_excluded_service(exchange.hot_wallet)

    def test_mints_originate_from_null_address(self, tiny_world):
        logs = tiny_world.node.get_logs(topic_count=4)
        assert any(log.topics[1] == NULL_ADDRESS for _tx, log in logs)

    def test_planted_wash_happens_near_collection_creation(self, small_world):
        creation_day = {
            collection.address: collection.creation_day
            for collection in small_world.collections
        }
        config = small_world.config
        detectable = small_world.ground_truth.detectable()
        near = sum(
            1
            for activity in detectable
            if activity.nft.contract in creation_day
            and activity.start_day - creation_day[activity.nft.contract]
            <= config.wash_near_creation_days + 1
        )
        assert near / len(detectable) > 0.9
