"""Determinism audit: same seed, same bytes, twice in a row.

A scenario run is a pile of moving parts -- world generation, day
hooks, tick boundaries, reorg injection, sharded refinement, alert
sequencing -- and every one of them must draw from the seeded RNG
lattice only.  These tests pin the whole composition: two runs with the
same seed must produce byte-identical detection alert logs and funnel
statistics.

SLO evaluation is disabled (``evaluate_slos=False``) for the digest
comparisons: SLO verdicts read *wall-clock* latencies, the one
legitimately non-deterministic input of a run, and a breach would
inject an operator alert whose payload depends on machine speed.  The
detection stream itself is wall-clock-free.
"""

from __future__ import annotations

from repro.simulation.scenarios import (
    PhaseSpec,
    ReorgProfile,
    RunOptions,
    ScenarioSpec,
    WorldSpec,
    run_scenario,
)

#: Reorg pressure makes this the strongest determinism probe: dropped
#: and delayed evidence, rollbacks and re-ingest all have to replay
#: identically from the seeded stream.
STORM_SPEC = ScenarioSpec(
    name="determinism-storm",
    description="reorg-heavy spec for the determinism audit",
    world=WorldSpec(preset="tiny"),
    phases=(
        PhaseSpec(name="calm", fraction=0.4, step_blocks=35),
        PhaseSpec(
            name="storm",
            fraction=0.6,
            step_blocks=10,
            reorg=ReorgProfile(
                probability=0.4,
                max_depth=5,
                drop_probability=0.3,
                delay_probability=0.25,
                max_shorten=1,
            ),
        ),
    ),
)


def _digest_options(**extra):
    return RunOptions(wire=False, evaluate_slos=False, seed=1234, **extra)


def _funnel_without_version(report):
    """Funnel statistics minus the serve-index publish counter.

    ``version`` counts index publishes, which legitimately varies with
    topology (sharded/worker refinement may coalesce or split ticks);
    every *detection* number in the funnel must still match exactly.
    """
    import json

    payload = json.loads(report.funnel_stats_json)
    payload.pop("version", None)
    return json.dumps(payload, sort_keys=True)


def test_same_seed_runs_are_byte_identical():
    first = run_scenario(STORM_SPEC, _digest_options())
    second = run_scenario(STORM_SPEC, _digest_options())
    assert first.alert_log, "the storm spec must produce alerts"
    assert first.alert_log == second.alert_log
    assert first.funnel_stats_json == second.funnel_stats_json
    # The structural outcome matches too, not just the digests.
    assert [vars(stats) | {"wall_seconds": 0} for stats in first.phases] == [
        vars(stats) | {"wall_seconds": 0} for stats in second.phases
    ]


def test_determinism_survives_sharding_and_workers():
    """Parallel refinement and a partitioned index must not reorder alerts."""
    baseline = run_scenario(STORM_SPEC, _digest_options())
    sharded = run_scenario(STORM_SPEC, _digest_options(shards=4, workers=2))
    assert baseline.alert_log == sharded.alert_log
    assert _funnel_without_version(baseline) == _funnel_without_version(sharded)


def test_different_seed_changes_the_world():
    baseline = run_scenario(STORM_SPEC, _digest_options())
    other = run_scenario(
        STORM_SPEC, RunOptions(wire=False, evaluate_slos=False, seed=4321)
    )
    assert baseline.alert_log != other.alert_log


def test_slo_engines_do_not_perturb_detection():
    """Arming SLOs adds observation, never behaviour.

    With generous bars nothing breaches, so the detection alert log must
    be byte-identical with and without the engines attached (the log
    already excludes operator SLO_BREACH alerts by construction).
    """
    unarmed = run_scenario(STORM_SPEC, _digest_options())
    armed = run_scenario(
        STORM_SPEC, RunOptions(wire=False, evaluate_slos=True, seed=1234)
    )
    assert unarmed.alert_log == armed.alert_log
    assert unarmed.funnel_stats_json == armed.funnel_stats_json
