"""The declarative scenario engine: specs, clock, runner, typed failure."""

from __future__ import annotations

import pytest

from repro.simulation.scenarios import (
    FeeShift,
    PhaseSLO,
    PhaseSpec,
    ReorgProfile,
    RunOptions,
    ScenarioFailure,
    ScenarioReport,
    ScenarioSpec,
    SimulatedClock,
    WorldSpec,
    get_scenario,
    run_scenario,
    scenario_names,
)


#: A minimal spec used across tests: tiny world, two phases, light reorg
#: pressure, the default relaxed detect-stage SLO.
FAST_SPEC = ScenarioSpec(
    name="engine-test",
    description="two-phase smoke spec for the engine tests",
    world=WorldSpec(preset="tiny"),
    phases=(
        PhaseSpec(name="one", fraction=0.5, step_blocks=40),
        PhaseSpec(
            name="two",
            fraction=0.5,
            step_blocks=20,
            reorg=ReorgProfile(probability=0.3, max_depth=4, max_shorten=1),
        ),
    ),
)

#: Options shared by most runs: no wire tier (saves a server per test)
#: and no exception on failure so reports can be inspected directly.
FAST_OPTIONS = dict(wire=False, raise_on_failure=False)


class TestSpecs:
    def test_registry_has_the_contracted_catalogue(self):
        # The acceptance bar is >= 5 registered scenarios.
        names = scenario_names()
        assert len(names) >= 5
        for name in names:
            spec = get_scenario(name)
            assert spec.name == name
            assert spec.phases

    def test_unknown_scenario_lists_catalogue(self):
        with pytest.raises(ValueError, match="registered:"):
            get_scenario("no-such-scenario")

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown preset"):
            WorldSpec(preset="galactic")
        with pytest.raises(ValueError, match="unknown SimulationConfig"):
            WorldSpec(overrides=(("no_such_knob", 1),)).build_config()
        with pytest.raises(ValueError, match="unknown WashMix"):
            WorldSpec(wash_mix=(("no_such_mix", 1),)).build_config()
        with pytest.raises(ValueError, match="unknown latency stage"):
            PhaseSLO(stage="teleport")
        with pytest.raises(ValueError, match="at_fraction"):
            FeeShift(venue="OpenSea", fee_bps=50, at_fraction=1.5)
        with pytest.raises(ValueError, match="unique"):
            ScenarioSpec(
                name="dup",
                description="",
                world=WorldSpec(),
                phases=(
                    PhaseSpec(name="same", fraction=0.5),
                    PhaseSpec(name="same", fraction=0.5),
                ),
            )


class TestSimulatedClock:
    def test_unpaced_clock_never_sleeps(self):
        slept = []
        clock = SimulatedClock(1000, speed=0.0, sleep=slept.append)
        assert not clock.paced
        assert clock.pace(99999) == 0.0
        assert not slept

    def test_paced_clock_sleeps_toward_target(self):
        wall = [100.0]
        slept = []

        def fake_sleep(seconds):
            slept.append(seconds)
            wall[0] += seconds

        clock = SimulatedClock(
            1000, speed=10.0, sleep=fake_sleep, wall=lambda: wall[0]
        )
        # 50 simulated seconds at 10x => 5 wall seconds, capped at 2/call.
        assert clock.pace(1050) == pytest.approx(2.0)
        assert clock.pace(1050) == pytest.approx(2.0)
        assert clock.pace(1050) == pytest.approx(1.0)
        assert clock.pace(1050) == 0.0  # caught up
        assert clock.total_slept == pytest.approx(5.0)
        assert clock.now() == pytest.approx(1050)

    def test_negative_speed_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock(0, speed=-1)


class TestRunner:
    def test_fast_spec_passes_with_typed_report(self):
        report = run_scenario(FAST_SPEC, RunOptions(**FAST_OPTIONS))
        assert isinstance(report, ScenarioReport)
        assert report.ok
        assert [stats.phase for stats in report.phases] == ["one", "two"]
        assert report.blocks > 0
        assert report.phases[-1].to_block <= report.blocks
        # One verdict per phase SLO (each phase carries the default one).
        assert {verdict.phase for verdict in report.verdicts} == {"one", "two"}
        for verdict in report.verdicts:
            assert verdict.ok
            assert verdict.evaluations > 0
            assert verdict.observed_seconds is not None
        names = [check.name for check in report.parity]
        assert names == ["stream-vs-batch", "serve-vs-batch"]
        assert all(check.ok for check in report.parity)
        assert report.alert_log.endswith(b"\n")
        assert report.funnel_stats_json

    def test_sharded_run_adds_shard_parity(self):
        report = run_scenario(
            FAST_SPEC, RunOptions(shards=3, **FAST_OPTIONS)
        )
        assert report.ok
        assert "shards" in [check.name for check in report.parity]

    def test_progress_lines_are_emitted(self):
        lines = []
        report = run_scenario(
            FAST_SPEC, RunOptions(progress=lines.append, **FAST_OPTIONS)
        )
        assert report.ok
        joined = "\n".join(lines)
        assert "phase one" in joined and "phase two" in joined

    def test_report_as_dict_is_json_shaped(self):
        import json

        report = run_scenario(
            FAST_SPEC, RunOptions(verify_parity=False, **FAST_OPTIONS)
        )
        payload = json.loads(json.dumps(report.as_dict(), sort_keys=True))
        assert payload["scenario"] == "engine-test"
        assert payload["ok"] is True
        assert len(payload["phases"]) == 2

    def test_impossible_slo_fails_with_typed_report(self):
        """Satellite: a broken spec produces a report, not a bare assert.

        A 0-second latency bar is below any achievable detect latency,
        so the run must fail -- and the failure must carry per-phase
        verdicts that identify exactly which objective broke and what
        was observed.
        """
        broken = ScenarioSpec(
            name="engine-test-broken-slo",
            description="deliberately unachievable latency bar",
            world=WorldSpec(preset="tiny"),
            phases=(
                PhaseSpec(
                    name="doomed",
                    fraction=1.0,
                    step_blocks=30,
                    slos=(
                        PhaseSLO(stage="detect", threshold_seconds=0.0),
                    ),
                ),
            ),
        )
        with pytest.raises(ScenarioFailure) as excinfo:
            run_scenario(broken, RunOptions(wire=False))
        report = excinfo.value.report
        assert not report.ok
        failed = [v for v in report.verdicts if not v.ok]
        assert failed, "failure must carry the failing verdicts"
        verdict = failed[0]
        assert verdict.phase == "doomed"
        assert verdict.stage == "detect"
        assert verdict.threshold_seconds == 0.0
        assert verdict.observed_seconds is not None
        assert verdict.observed_seconds > 0.0
        assert "[FAIL]" in verdict.render()
        # Parity still holds -- only the latency bar broke.
        assert all(check.ok for check in report.parity)
        assert report.failures()

    def test_raise_on_failure_false_returns_the_report(self):
        broken = ScenarioSpec(
            name="engine-test-broken-slo-no-raise",
            description="unachievable bar, inspected without raising",
            world=WorldSpec(preset="tiny"),
            phases=(
                PhaseSpec(
                    name="doomed",
                    fraction=1.0,
                    step_blocks=30,
                    slos=(
                        PhaseSLO(stage="detect", threshold_seconds=0.0),
                    ),
                ),
            ),
        )
        report = run_scenario(
            broken, RunOptions(wire=False, raise_on_failure=False)
        )
        assert not report.ok
        assert any(not verdict.ok for verdict in report.verdicts)
