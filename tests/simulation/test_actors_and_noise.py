"""Unit tests for the trading kit, legit market and distractor engine."""

from __future__ import annotations

import pytest

from repro.simulation.actors import TradingKit
from repro.simulation.config import SimulationConfig
from repro.simulation.distractors import spread_over_days
from repro.simulation.legit import LegitInventory
from repro.utils.rng import DeterministicRNG
from tests.helpers import make_micro_world


@pytest.fixture()
def world():
    return make_micro_world(seed=5)


class TestTradingKit:
    def test_new_accounts_are_unique(self, world):
        accounts = {world.kit.new_account("x") for _ in range(50)}
        assert len(accounts) == 50

    def test_fund_from_exchange_credits_account(self, world):
        account = world.kit.new_account("trader")
        world.kit.fund_from_exchange(account, 3.0, day=1)
        assert world.kit.balance_eth(account) == pytest.approx(3.0)

    def test_mint_returns_token_id_and_ownership(self, world):
        owner = world.account("minter", funded_eth=5)
        token_id = world.kit.mint(world.collection_address, owner, day=1)
        assert world.kit.owner_of(world.collection_address, token_id) == owner

    def test_ensure_approval_is_idempotent(self, world):
        owner = world.account("approver", funded_eth=5)
        operator = world.marketplaces.address_of("OpenSea")
        before = world.chain.transaction_count()
        world.kit.ensure_approval(owner, world.collection_address, operator, day=1)
        world.kit.ensure_approval(owner, world.collection_address, operator, day=1)
        assert world.chain.transaction_count() == before + 1

    def test_self_trade_attaches_value(self, world):
        owner = world.account("selfer", funded_eth=10)
        token_id = world.kit.mint(world.collection_address, owner, day=1)
        tx = world.kit.self_trade(world.collection_address, token_id, owner, day=2, attached_value_eth=1.5)
        assert tx.value_wei == 1_500_000_000_000_000_000
        assert world.kit.owner_of(world.collection_address, token_id) == owner

    def test_p2p_trade_produces_two_transactions(self, world):
        seller = world.account("p2p-seller", funded_eth=10)
        buyer = world.account("p2p-buyer", funded_eth=10)
        token_id = world.kit.mint(world.collection_address, seller, day=1)
        payment, transfer = world.kit.p2p_trade(
            world.collection_address, token_id, seller, buyer, 2.0, day=2
        )
        assert payment.value_wei > 0
        assert transfer.value_wei == 0
        assert world.kit.owner_of(world.collection_address, token_id) == buyer

    def test_otc_trade_is_atomic(self, world):
        seller = world.account("otc-seller", funded_eth=10)
        buyer = world.account("otc-buyer", funded_eth=10)
        token_id = world.kit.mint(world.collection_address, seller, day=1)
        tx = world.kit.otc_trade(world.collection_address, token_id, seller, buyer, 2.0, day=2)
        assert tx.value_wei > 0
        assert any(log.is_erc721_transfer for log in tx.logs)
        assert world.kit.owner_of(world.collection_address, token_id) == buyer

    def test_reward_token_balance_starts_at_zero(self, world):
        account = world.kit.new_account("nobody")
        assert world.kit.reward_token_balance("LooksRare", account) == 0
        assert world.kit.reward_token_balance("OpenSea", account) == 0


class TestLegitInventory:
    def test_add_and_move_track_history(self):
        inventory = LegitInventory()
        inventory.add("0xc", 1, "alice")
        inventory.move("0xc", 1, "bob")
        assert inventory.owners[("0xc", 1)] == "bob"
        assert inventory.history[("0xc", 1)] == {"alice", "bob"}
        assert inventory.minted["0xc"] == 1
        assert ("0xc", 1) in inventory.sellable()


class TestDistractorPlanning:
    def test_spread_over_days_conserves_total(self):
        rng = DeterministicRNG(1, "spread")
        schedule = spread_over_days(37, 90, rng)
        assert sum(schedule.values()) == 37
        assert all(1 <= day <= 89 for day in schedule)

    def test_spread_is_deterministic(self):
        first = spread_over_days(20, 50, DeterministicRNG(2, "spread"))
        second = spread_over_days(20, 50, DeterministicRNG(2, "spread"))
        assert first == second


class TestLegitMarketInWorld:
    def test_legit_trading_creates_no_candidates(self, tiny_world, tiny_report):
        """Legitimate NFTs never end up among the refined candidates."""
        planted = {item.nft for item in tiny_world.ground_truth.activities}
        for component in tiny_report.result.refinement.candidates:
            assert component.nft in planted

    def test_distractor_contracts_present_but_invisible(self, tiny_world, tiny_report):
        """Position-vault, ERC-1155 and non-compliant activity exists on chain
        but never surfaces as a confirmed activity."""
        vault_collection = tiny_world.defi_addresses.get("position-collection")
        assert vault_collection is not None
        washed_contracts = {nft.contract for nft in tiny_report.result.washed_nfts()}
        assert vault_collection not in washed_contracts
