"""Unit tests for the Sec. III dataset construction."""

from __future__ import annotations

import pytest

from repro.chain.types import Call, NFTKey
from repro.contracts.erc1155 import ERC1155Collection
from repro.contracts.erc20 import ERC20Token
from repro.contracts.noncompliant import NonCompliantNFTContract
from repro.ingest.compliance import check_erc721_compliance
from repro.ingest.dataset import build_dataset
from repro.ingest.marketplace_attribution import attribute_marketplace, build_reverse_index
from repro.ingest.transfer_scan import decode_transfer_log, scan_erc721_transfer_logs
from repro.utils.currency import eth_to_wei
from tests.helpers import make_micro_world


@pytest.fixture()
def world():
    return make_micro_world()


def script_basic_activity(world):
    """One mint, one marketplace sale, one direct transfer, plus distractors."""
    kit = world.kit
    alice = world.account("alice", funded_eth=20)
    bob = world.account("bob", funded_eth=20)
    carol = world.account("carol", funded_eth=20)

    token_id = kit.mint(world.collection_address, alice, day=1)
    kit.marketplace_sale("OpenSea", world.collection_address, token_id, alice, bob, 2.0, day=2)
    kit.direct_transfer(world.collection_address, token_id, bob, carol, day=3)

    # Distractor contracts whose events must not be picked up (ERC-20,
    # ERC-1155) or must be dropped by the compliance check (non-compliant).
    erc20 = ERC20Token("Wrapped Ether", "WETH")
    erc20_address = world.chain.deploy_contract(erc20)
    world.chain.transact(
        sender=alice, to=erc20_address, call=Call("mint", {"to": alice, "amount": 10}),
        timestamp=kit.clock.next_timestamp(3),
    )
    erc1155 = ERC1155Collection("Multi")
    erc1155_address = world.chain.deploy_contract(erc1155)
    world.chain.transact(
        sender=alice, to=erc1155_address, call=Call("mint", {"to": alice, "token_id": 1, "amount": 2}),
        timestamp=kit.clock.next_timestamp(3),
    )
    legacy = NonCompliantNFTContract("Legacy")
    legacy_address = world.chain.deploy_contract(legacy)
    world.chain.transact(
        sender=alice, to=legacy_address, call=Call("mint", {"to": alice}),
        timestamp=kit.clock.next_timestamp(3),
    )
    return alice, bob, carol, token_id, legacy_address


class TestTransferScan:
    def test_scan_finds_only_erc721_layout(self, world):
        alice, bob, carol, token_id, legacy_address = script_basic_activity(world)
        scan = scan_erc721_transfer_logs(world.node)
        # mint + sale + direct transfer + legacy mint = 4 ERC-721-shaped events.
        assert scan.event_count == 4
        assert world.collection_address in scan.emitting_contracts
        assert legacy_address in scan.emitting_contracts
        assert scan.contract_count == 2

    def test_decode_transfer_log(self, world):
        alice, *_ = world.account("alice", funded_eth=5), None
        token_id = world.kit.mint(world.collection_address, world.account("alice"), day=1)
        scan = scan_erc721_transfer_logs(world.node)
        sender, recipient, decoded_id = decode_transfer_log(scan.matches[0][1])
        assert decoded_id == token_id
        assert recipient == world.account("alice")

    def test_events_by_contract(self, world):
        script_basic_activity(world)
        scan = scan_erc721_transfer_logs(world.node)
        assert scan.events_by_contract()[world.collection_address] == 3


class TestCompliance:
    def test_compliant_and_noncompliant_split(self, world):
        *_rest, legacy_address = script_basic_activity(world)
        scan = scan_erc721_transfer_logs(world.node)
        report = check_erc721_compliance(world.node, scan.emitting_contracts)
        assert report.is_compliant(world.collection_address)
        assert not report.is_compliant(legacy_address)
        assert report.compliance_ratio == pytest.approx(0.5)

    def test_non_contract_address_is_noncompliant(self, world):
        report = check_erc721_compliance(world.node, ["0x" + "9" * 40])
        assert report.compliant_count == 0
        assert report.checked_count == 1


class TestAttribution:
    def test_marketplace_sale_attributed(self, world):
        script_basic_activity(world)
        addresses = world.marketplaces.addresses_by_name
        sale_tx = next(
            tx
            for block in world.chain.blocks
            for tx in block.transactions
            if tx.to == addresses["OpenSea"]
            and tx.call is not None
            and tx.call.function == "buy"
        )
        assert attribute_marketplace(sale_tx, addresses) == "OpenSea"

    def test_plain_transfer_not_attributed(self, world):
        script_basic_activity(world)
        addresses = world.marketplaces.addresses_by_name
        other_tx = world.chain.blocks[0].transactions[0]
        assert attribute_marketplace(other_tx, addresses) is None

    def test_reverse_index(self):
        reverse = build_reverse_index({"OpenSea": "0xabc"})
        assert reverse == {"0xabc": "OpenSea"}


class TestDatasetAssembly:
    def test_dataset_contents(self, world):
        alice, bob, carol, token_id, legacy_address = script_basic_activity(world)
        dataset = build_dataset(world.node, world.marketplaces.addresses_by_name)
        nft = NFTKey(contract=world.collection_address, token_id=token_id)

        assert dataset.nft_count == 1  # the legacy contract is filtered out
        assert dataset.collection_count == 1
        transfers = dataset.transfers_of(nft)
        assert len(transfers) == 3
        assert transfers[0].is_mint
        assert transfers[1].marketplace == "OpenSea"
        assert transfers[1].price_wei == eth_to_wei(2)
        assert transfers[2].marketplace is None
        assert transfers[2].price_wei == 0

    def test_involved_accounts_and_their_transactions(self, world):
        alice, bob, carol, token_id, _ = script_basic_activity(world)
        dataset = build_dataset(world.node, world.marketplaces.addresses_by_name)
        accounts = dataset.involved_accounts()
        assert {alice, bob, carol} <= accounts
        assert dataset.transactions_of(alice)
        assert any(tx.value_wei > 0 for tx in dataset.transactions_of(alice))

    def test_marketplace_activity_rows(self, world):
        _, _, _, token_id, _ = script_basic_activity(world)
        dataset = build_dataset(world.node, world.marketplaces.addresses_by_name)
        activity = dataset.marketplace_activity()
        assert activity["OpenSea"].nft_count == 1
        assert activity["OpenSea"].transaction_count == 1
        assert activity["OpenSea"].volume_wei == eth_to_wei(2)
        assert activity["LooksRare"].nft_count == 0

    def test_compliance_can_be_disabled(self, world):
        script_basic_activity(world)
        strict = build_dataset(world.node, world.marketplaces.addresses_by_name)
        lax = build_dataset(
            world.node, world.marketplaces.addresses_by_name, enforce_compliance=False
        )
        assert lax.nft_count > strict.nft_count

    def test_total_and_collection_volume(self, world):
        script_basic_activity(world)
        dataset = build_dataset(world.node, world.marketplaces.addresses_by_name)
        assert dataset.total_volume_wei == eth_to_wei(2)
        assert dataset.volume_of_collection_wei(world.collection_address) == eth_to_wei(2)

    def test_to_block_clamps_account_transactions(self, world):
        """``build_dataset(to_block=B)`` must be causal end to end.

        The transfer scan always stopped at B, but account transaction
        histories used to span the whole chain -- a prefix build against
        an archive node saw funding/exit transactions from the future.
        Both views are clamped now.
        """
        alice, bob, carol, token_id, _ = script_basic_activity(world)
        upper = world.node.block_number
        # Mine post-cutoff activity involving an already-involved account.
        world.kit.direct_transfer(
            world.collection_address, token_id, carol, alice, day=5
        )
        world.kit.fund_from_exchange(alice, 3, day=5)
        assert world.node.block_number > upper

        clamped = build_dataset(
            world.node, world.marketplaces.addresses_by_name, to_block=upper
        )
        full = build_dataset(world.node, world.marketplaces.addresses_by_name)
        for account in clamped.involved_accounts():
            assert all(
                tx.block_number <= upper
                for tx in clamped.transactions_of(account)
            ), f"future transaction leaked into {account}'s clamped history"
        # The unclamped build does see the later activity, so the clamp
        # (not the scripted history) is what kept the prefix causal.
        assert any(
            tx.block_number > upper for tx in full.transactions_of(alice)
        )
