"""Tests for the CDF helpers, table builders, figures and the report."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.analysis.cdf import cdf_at, empirical_cdf, quantile
from repro.analysis.tables import format_table


class TestCDF:
    def test_empirical_cdf_points(self):
        points = empirical_cdf([1, 2, 2, 4])
        assert points[0] == (1, 0.25)
        assert points[-1] == (4, 1.0)
        # Duplicate values collapse into one point.
        assert (2, 0.75) in points

    def test_empty_sample(self):
        assert empirical_cdf([]) == []
        assert cdf_at([], 5) == 0.0
        assert quantile([], 0.5) == 0.0

    def test_cdf_at(self):
        values = [1, 2, 3, 4]
        assert cdf_at(values, 0) == 0.0
        assert cdf_at(values, 2) == 0.5
        assert cdf_at(values, 10) == 1.0

    def test_quantile(self):
        values = list(range(1, 101))
        assert quantile(values, 0.0) == 1
        assert quantile(values, 1.0) == 100
        with pytest.raises(ValueError):
            quantile(values, 1.5)

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["x", 1], ["yyyy", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=200))
def test_cdf_is_monotone_and_ends_at_one(values):
    points = empirical_cdf(values)
    fractions = [fraction for _value, fraction in points]
    assert fractions == sorted(fractions)
    assert fractions[-1] == pytest.approx(1.0)
    xs = [value for value, _fraction in points]
    assert xs == sorted(xs)


@given(
    st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=100),
    st.floats(min_value=0, max_value=1e6, allow_nan=False),
)
def test_cdf_at_is_bounded(values, threshold):
    assert 0.0 <= cdf_at(values, threshold) <= 1.0


class TestTablesOnSmallWorld:
    def test_table_one_covers_all_venues(self, small_report):
        rows = small_report.table_one()
        assert {row.marketplace for row in rows} == {
            "OpenSea", "LooksRare", "Rarible", "SuperRare", "Foundation", "Decentraland",
        }
        assert all(row.volume_usd >= 0 for row in rows)
        # Sorted by volume, descending.
        volumes = [row.volume_usd for row in rows]
        assert volumes == sorted(volumes, reverse=True)

    def test_table_two_shares_are_fractions(self, small_report):
        for row in small_report.table_two():
            assert 0.0 <= row.share_of_marketplace_volume <= 1.0
            assert row.wash_volume_usd >= 0

    def test_table_three_has_both_venues(self, small_report):
        columns = small_report.table_three()
        assert {column.marketplace for column in columns} == {"LooksRare", "Rarible"}
        assert {column.outcome for column in columns} == {"successful", "failed"}

    def test_figures_are_consistent_with_result(self, small_report):
        result = small_report.result
        account_figure = small_report.figure_account_counts()
        assert sum(account_figure.counts.values()) == result.activity_count
        patterns = small_report.figure_patterns()
        assert sum(patterns.values()) == result.activity_count
        lifetime = small_report.figure_lifetime_cdf()
        assert 0 <= lifetime.fraction_within_one_day <= lifetime.fraction_within_ten_days <= 1

    def test_figure_venn_counts_only_transaction_analysis_methods(self, small_report):
        venn = small_report.figure_venn()
        assert sum(venn.values()) <= small_report.result.activity_count
        for key in venn:
            assert set(key.split("+")) <= {"zero-risk", "common-funder", "common-exit"}

    def test_volume_cdf_series_include_legit_baseline(self, small_report):
        series = small_report.figure_volume_cdf()
        labels = [item.label for item in series]
        assert "Volume w/o wash trading" in labels

    def test_creation_timeline_limited_to_top_ten(self, small_report):
        timeline = small_report.figure_creation_timeline()
        assert len(timeline) <= 10
        for row in timeline:
            assert row.activity_timestamps == sorted(row.activity_timestamps)

    def test_funnel_rows_are_monotone(self, small_report):
        rows = small_report.funnel()
        nft_counts = [row.nft_count for row in rows]
        assert nft_counts == sorted(nft_counts, reverse=True)

    def test_render_text_contains_every_section(self, small_report):
        text = small_report.render_text()
        for marker in (
            "Table I", "Table II", "Table III", "Refinement funnel",
            "Temporal analysis", "Patterns", "Serial wash traders", "resale",
        ):
            assert marker in text
