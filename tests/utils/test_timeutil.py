"""Unit tests for time helpers."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.utils.timeutil import (
    SECONDS_PER_DAY,
    SIMULATION_EPOCH,
    day_of,
    days_between,
    format_day,
    timestamp_of_day,
)


class TestDayArithmetic:
    def test_day_of_epoch(self):
        assert day_of(0) == 0
        assert day_of(SECONDS_PER_DAY) == 1
        assert day_of(SECONDS_PER_DAY - 1) == 0

    def test_timestamp_of_day_round_trip(self):
        assert day_of(timestamp_of_day(123)) == 123

    def test_days_between(self):
        assert days_between(0, SECONDS_PER_DAY) == 1.0
        assert days_between(0, SECONDS_PER_DAY // 2) == 0.5

    def test_simulation_epoch_is_midnight(self):
        assert SIMULATION_EPOCH % SECONDS_PER_DAY == 0

    def test_format_day(self):
        assert format_day(SIMULATION_EPOCH) == "2020-01-01"


@given(st.integers(min_value=0, max_value=10**10))
def test_day_of_consistent_with_timestamp_of_day(timestamp):
    day = day_of(timestamp)
    assert timestamp_of_day(day) <= timestamp < timestamp_of_day(day + 1)
