"""Unit tests for the deterministic RNG."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.utils.hashing import is_address
from repro.utils.rng import DeterministicRNG


class TestDeterminism:
    def test_same_seed_same_draws(self):
        first = DeterministicRNG(1)
        second = DeterministicRNG(1)
        assert [first.random() for _ in range(10)] == [second.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        assert DeterministicRNG(1).random() != DeterministicRNG(2).random()

    def test_children_are_independent_of_draw_order(self):
        root = DeterministicRNG(5)
        child_a_first = root.child("a").random()
        root2 = DeterministicRNG(5)
        root2.child("b").random()
        assert child_a_first == root2.child("a").random()

    def test_named_children_differ(self):
        root = DeterministicRNG(5)
        assert root.child("a").random() != root.child("b").random()


class TestDraws:
    def test_randint_bounds(self):
        rng = DeterministicRNG(3)
        values = [rng.randint(2, 4) for _ in range(100)]
        assert set(values) <= {2, 3, 4}

    def test_choice_returns_member(self):
        rng = DeterministicRNG(3)
        assert rng.choice(["x", "y"]) in {"x", "y"}

    def test_sample_distinct(self):
        rng = DeterministicRNG(3)
        sample = rng.sample(list(range(20)), 5)
        assert len(set(sample)) == 5

    def test_shuffle_preserves_elements_and_input(self):
        rng = DeterministicRNG(3)
        original = [1, 2, 3, 4]
        shuffled = rng.shuffle(original)
        assert sorted(shuffled) == original
        assert original == [1, 2, 3, 4]

    def test_weighted_choice_respects_zero_weight(self):
        rng = DeterministicRNG(3)
        values = [rng.weighted_choice(["a", "b"], [1.0, 0.0]) for _ in range(50)]
        assert set(values) == {"a"}

    def test_bernoulli_extremes(self):
        rng = DeterministicRNG(3)
        assert all(rng.bernoulli(1.0) for _ in range(20))
        assert not any(rng.bernoulli(0.0) for _ in range(20))

    def test_distribution_draws_positive(self):
        rng = DeterministicRNG(3)
        assert rng.lognormal(0, 1) > 0
        assert rng.exponential(5.0) >= 0
        assert rng.pareto(2.0, scale=3.0) >= 3.0

    def test_address_draw_is_valid(self):
        rng = DeterministicRNG(3)
        assert is_address(rng.address("trader"))


@given(st.integers(min_value=0, max_value=2**31), st.text(max_size=12))
def test_any_seed_and_name_reproducible(seed, name):
    assert DeterministicRNG(seed, name).random() == DeterministicRNG(seed, name).random()
