"""Unit tests for deterministic hashing helpers."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.utils.hashing import (
    ERC1155_TRANSFER_SINGLE_SIGNATURE,
    ERC721_TRANSFER_SIGNATURE,
    address_from_parts,
    event_signature,
    is_address,
    keccak_hex,
    new_address,
    new_tx_hash,
)


class TestKeccakHex:
    def test_is_deterministic(self):
        assert keccak_hex("a", 1) == keccak_hex("a", 1)

    def test_differs_for_different_inputs(self):
        assert keccak_hex("a") != keccak_hex("b")

    def test_has_hash_shape(self):
        digest = keccak_hex("anything")
        assert digest.startswith("0x")
        assert len(digest) == 66

    def test_part_boundaries_matter(self):
        # ("ab",) and ("a", "b") must not collide.
        assert keccak_hex("ab") != keccak_hex("a", "b")


class TestEventSignature:
    def test_transfer_signature_matches_mainnet_constant(self):
        assert (
            event_signature("Transfer(address,address,uint256)")
            == ERC721_TRANSFER_SIGNATURE
        )
        assert ERC721_TRANSFER_SIGNATURE.startswith("0xddf252ad")

    def test_erc1155_signature_is_distinct(self):
        assert ERC1155_TRANSFER_SINGLE_SIGNATURE != ERC721_TRANSFER_SIGNATURE

    def test_unknown_event_gets_synthetic_signature(self):
        signature = event_signature("Foo(uint256)")
        assert signature.startswith("0x")
        assert signature != ERC721_TRANSFER_SIGNATURE


class TestAddresses:
    def test_new_address_shape(self):
        assert is_address(new_address())

    def test_new_addresses_are_unique(self):
        addresses = {new_address() for _ in range(100)}
        assert len(addresses) == 100

    def test_address_from_parts_is_deterministic(self):
        assert address_from_parts("x", 1) == address_from_parts("x", 1)

    def test_is_address_rejects_bad_values(self):
        assert not is_address("0x123")
        assert not is_address("not an address")
        assert not is_address("0x" + "zz" * 20)

    def test_tx_hash_shape(self):
        assert new_tx_hash("a", 1).startswith("0x")
        assert len(new_tx_hash("a", 1)) == 66


@given(st.text(max_size=30), st.integers())
def test_address_from_parts_always_valid(text, number):
    assert is_address(address_from_parts(text, number))


@given(st.lists(st.integers(), max_size=10))
def test_keccak_hex_deterministic_property(parts):
    assert keccak_hex(*parts) == keccak_hex(*parts)
