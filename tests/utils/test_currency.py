"""Unit tests for currency conversions."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.utils.currency import (
    GWEI_PER_ETH,
    WEI_PER_ETH,
    eth_to_wei,
    format_eth,
    format_usd,
    gwei_to_wei,
    wei_to_eth,
    wei_to_gwei,
)


class TestConversions:
    def test_one_eth_in_wei(self):
        assert eth_to_wei(1) == WEI_PER_ETH

    def test_fractional_eth(self):
        assert eth_to_wei(0.5) == WEI_PER_ETH // 2

    def test_round_trip_exact_for_integers(self):
        assert wei_to_eth(eth_to_wei(7)) == 7.0

    def test_gwei_conversion(self):
        assert gwei_to_wei(1) == 10**9
        assert wei_to_gwei(10**9) == 1.0

    def test_gwei_per_eth_constant(self):
        assert GWEI_PER_ETH == 10**9

    def test_zero(self):
        assert eth_to_wei(0) == 0
        assert wei_to_eth(0) == 0.0


class TestFormatting:
    def test_format_eth(self):
        assert format_eth(eth_to_wei(1.5)) == "1.5000 ETH"

    def test_format_eth_thousands_separator(self):
        assert "," in format_eth(eth_to_wei(12_345))

    def test_format_usd(self):
        assert format_usd(1234.5) == "$1,234.50"


@given(st.floats(min_value=0, max_value=1e9, allow_nan=False, allow_infinity=False))
def test_wei_round_trip_close(amount_eth):
    wei = eth_to_wei(amount_eth)
    assert wei >= 0
    assert wei_to_eth(wei) == pytest.approx(amount_eth, rel=1e-12, abs=1e-9)


@given(st.integers(min_value=0, max_value=10**27))
def test_wei_to_eth_monotonic(wei):
    assert wei_to_eth(wei + WEI_PER_ETH) > wei_to_eth(wei)
