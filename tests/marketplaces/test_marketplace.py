"""Unit tests for marketplace sale mechanics, escrow and fee routing."""

from __future__ import annotations

import pytest

from repro.chain.errors import ContractExecutionError
from repro.chain.types import Call
from repro.marketplaces.venues import MARKETPLACE_FEE_BPS
from repro.utils.currency import eth_to_wei, wei_to_eth
from tests.helpers import make_micro_world


@pytest.fixture()
def world():
    return make_micro_world()


def setup_sale(world, venue="OpenSea", price=2.0):
    kit = world.kit
    seller = world.account("seller", funded_eth=5)
    buyer = world.account("buyer", funded_eth=price + 5)
    token_id = kit.mint(world.collection_address, seller, day=1)
    tx = kit.marketplace_sale(venue, world.collection_address, token_id, seller, buyer, price, day=1)
    return seller, buyer, token_id, tx


class TestDirectSale:
    def test_nft_moves_to_buyer(self, world):
        seller, buyer, token_id, _ = setup_sale(world)
        assert world.collection.ownerOf(token_id) == buyer

    def test_seller_receives_price_minus_fee(self, world):
        price = 2.0
        seller, _, _, _ = setup_sale(world, price=price)
        fee_fraction = MARKETPLACE_FEE_BPS["OpenSea"] / 10_000
        expected = 5 - 0.1 + price * (1 - fee_fraction)  # funding minus some gas
        assert world.kit.balance_eth(seller) == pytest.approx(expected, abs=0.2)

    def test_fee_lands_in_treasury(self, world):
        price = 2.0
        setup_sale(world, price=price)
        venue = world.marketplaces.venue("OpenSea")
        fee = price * MARKETPLACE_FEE_BPS["OpenSea"] / 10_000
        assert wei_to_eth(world.chain.state.balance_of(venue.treasury_address)) == pytest.approx(fee)

    def test_sale_transaction_interacts_with_marketplace(self, world):
        _, _, _, tx = setup_sale(world)
        assert tx.to == world.marketplaces.address_of("OpenSea")
        assert any(log.is_erc721_transfer for log in tx.logs)

    def test_sale_recorded_in_venue_book(self, world):
        setup_sale(world)
        venue = world.marketplaces.venue("OpenSea")
        assert venue.sale_count == 1
        assert venue.total_volume_wei == eth_to_wei(2.0)

    def test_wrong_value_reverts(self, world):
        kit = world.kit
        seller = world.account("seller2", funded_eth=5)
        buyer = world.account("buyer2", funded_eth=5)
        token_id = kit.mint(world.collection_address, seller, day=1)
        kit.ensure_approval(seller, world.collection_address, world.marketplaces.address_of("OpenSea"), 1)
        with pytest.raises(ContractExecutionError):
            world.chain.transact(
                sender=buyer,
                to=world.marketplaces.address_of("OpenSea"),
                value_wei=eth_to_wei(0.5),
                call=Call(
                    "buy",
                    {
                        "collection": world.collection_address,
                        "token_id": token_id,
                        "seller": seller,
                        "price_wei": eth_to_wei(1.0),
                    },
                ),
                timestamp=world.kit.clock.next_timestamp(1),
            )

    def test_selling_someone_elses_nft_reverts(self, world):
        kit = world.kit
        seller = world.account("seller3", funded_eth=5)
        other = world.account("other3", funded_eth=5)
        buyer = world.account("buyer3", funded_eth=5)
        token_id = kit.mint(world.collection_address, other, day=1)
        with pytest.raises(ContractExecutionError):
            kit.marketplace_sale("OpenSea", world.collection_address, token_id, seller, buyer, 1.0, day=1)

    def test_zero_price_sale_moves_no_value(self, world):
        kit = world.kit
        seller = world.account("seller4", funded_eth=5)
        buyer = world.account("buyer4", funded_eth=5)
        token_id = kit.mint(world.collection_address, seller, day=1)
        tx = kit.marketplace_sale("OpenSea", world.collection_address, token_id, seller, buyer, 0.0, day=1)
        assert tx.value_wei == 0
        assert world.collection.ownerOf(token_id) == buyer


class TestEscrowVenue:
    def test_escrowed_sale_flows_through_escrow_account(self, world):
        kit = world.kit
        seller = world.account("escrow-seller", funded_eth=10)
        buyer = world.account("escrow-buyer", funded_eth=10)
        token_id = kit.mint(world.collection_address, seller, day=1)
        venue = world.marketplaces.venue("Foundation")
        kit.marketplace_sale("Foundation", world.collection_address, token_id, seller, buyer, 3.0, day=1)
        assert world.collection.ownerOf(token_id) == buyer
        # The deposit leg moved the NFT through the escrow EOA.
        holders = [
            log.topics[2]
            for _tx, log in world.node.get_logs(topic_count=4)
            if int(log.topics[3], 16) == token_id
        ]
        assert venue.escrow_address in holders

    def test_foundation_fee_is_fifteen_percent(self, world):
        venue = world.marketplaces.venue("Foundation")
        assert venue.fee_bps == 1500
        assert venue.fee_for(eth_to_wei(1)) == eth_to_wei(0.15)

    def test_escrow_release_returns_nft(self, world):
        kit = world.kit
        seller = world.account("delister", funded_eth=10)
        token_id = kit.mint(world.collection_address, seller, day=1)
        venue = world.marketplaces.venue("Foundation")
        kit.ensure_approval(seller, world.collection_address, venue.bound_address, 1)
        world.chain.transact(
            sender=seller,
            to=venue.bound_address,
            call=Call("depositToEscrow", {"collection": world.collection_address, "token_id": token_id}),
            timestamp=kit.clock.next_timestamp(1),
        )
        assert world.collection.ownerOf(token_id) == venue.escrow_address
        # The venue backend grants its sale contract operator rights over
        # the escrow wallet (the kit does this automatically during sales).
        kit.ensure_approval(venue.escrow_address, world.collection_address, venue.bound_address, 1)
        world.chain.transact(
            sender=seller,
            to=venue.bound_address,
            call=Call("releaseFromEscrow", {"collection": world.collection_address, "token_id": token_id}),
            timestamp=kit.clock.next_timestamp(1),
        )
        assert world.collection.ownerOf(token_id) == seller

    def test_non_escrow_venue_rejects_deposit(self, world):
        kit = world.kit
        seller = world.account("nondepositor", funded_eth=5)
        token_id = kit.mint(world.collection_address, seller, day=1)
        with pytest.raises(ContractExecutionError):
            world.chain.transact(
                sender=seller,
                to=world.marketplaces.address_of("OpenSea"),
                call=Call("depositToEscrow", {"collection": world.collection_address, "token_id": token_id}),
                timestamp=kit.clock.next_timestamp(1),
            )


class TestVenueCatalogue:
    def test_all_six_venues_deployed(self, world):
        assert set(world.marketplaces.venues) == {
            "OpenSea", "LooksRare", "Rarible", "SuperRare", "Foundation", "Decentraland",
        }

    def test_fee_schedule_matches_paper(self, world):
        assert world.marketplaces.venue("OpenSea").fee_bps == 250
        assert world.marketplaces.venue("LooksRare").fee_bps == 200
        assert world.marketplaces.venue("Rarible").fee_bps == 200
        assert world.marketplaces.venue("Foundation").fee_bps == 1500

    def test_only_looksrare_and_rarible_have_reward_programs(self, world):
        for name, venue in world.marketplaces.venues.items():
            if name in ("LooksRare", "Rarible"):
                assert venue.reward_program is not None
            else:
                assert venue.reward_program is None

    def test_marketplaces_are_labelled(self, world):
        for name, address in world.marketplaces.addresses_by_name.items():
            assert world.labels.has_label(address, "marketplace")
