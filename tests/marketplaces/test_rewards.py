"""Unit tests for the token reward programs (Eq. 1) and claim flow."""

from __future__ import annotations

import pytest

from repro.chain.errors import ContractExecutionError
from repro.chain.types import Call
from repro.contracts.erc20 import ERC20Token
from repro.marketplaces.rewards import RewardProgram, RewardSchedule
from repro.utils.currency import eth_to_wei
from repro.utils.timeutil import SIMULATION_EPOCH, day_of
from tests.helpers import make_micro_world

EPOCH_DAY = day_of(SIMULATION_EPOCH)


class TestRewardProgramFormula:
    def make_program(self, emission=1000.0):
        token = ERC20Token("LooksRare Token", "LOOKS")
        return RewardProgram("LooksRare", token, RewardSchedule(daily_emission=emission))

    def test_single_trader_takes_full_emission(self):
        program = self.make_program()
        program.record_volume("0xabc", eth_to_wei(10), day=EPOCH_DAY)
        assert program.reward_for_day("0xabc", EPOCH_DAY) == 1000 * 10**18

    def test_rewards_are_proportional_to_volume(self):
        program = self.make_program()
        program.record_volume("0xaaa", eth_to_wei(30), day=EPOCH_DAY)
        program.record_volume("0xbbb", eth_to_wei(10), day=EPOCH_DAY)
        reward_a = program.reward_for_day("0xaaa", EPOCH_DAY)
        reward_b = program.reward_for_day("0xbbb", EPOCH_DAY)
        assert reward_a == 3 * reward_b
        assert reward_a + reward_b <= 1000 * 10**18

    def test_no_volume_no_reward(self):
        program = self.make_program()
        assert program.reward_for_day("0xabc", EPOCH_DAY) == 0

    def test_zero_and_negative_volume_ignored(self):
        program = self.make_program()
        program.record_volume("0xabc", 0, day=EPOCH_DAY)
        program.record_volume("0xabc", -5, day=EPOCH_DAY)
        assert program.total_volume(EPOCH_DAY) == 0

    def test_pending_excludes_current_day(self):
        program = self.make_program()
        program.record_volume("0xabc", eth_to_wei(10), day=EPOCH_DAY)
        assert program.pending_rewards("0xabc", current_day=EPOCH_DAY) == 0
        assert program.pending_rewards("0xabc", current_day=EPOCH_DAY + 1) == 1000 * 10**18

    def test_pending_accumulates_multiple_days(self):
        program = self.make_program()
        program.record_volume("0xabc", eth_to_wei(10), day=EPOCH_DAY)
        program.record_volume("0xabc", eth_to_wei(10), day=EPOCH_DAY + 1)
        assert program.pending_rewards("0xabc", current_day=EPOCH_DAY + 2) == 2000 * 10**18

    def test_claim_marks_days_settled(self):
        program = self.make_program()
        program.record_volume("0xabc", eth_to_wei(10), day=EPOCH_DAY)
        program.mark_claimed("0xabc", through_day=EPOCH_DAY + 1)
        assert program.pending_rewards("0xabc", current_day=EPOCH_DAY + 5) == 0

    def test_schedule_window(self):
        schedule = RewardSchedule(daily_emission=100, start_day=10, end_day=20)
        assert schedule.emission_on(9) == 0
        assert schedule.emission_on(10) == 100 * 10**18
        assert schedule.emission_on(21) == 0


class TestClaimFlow:
    def test_claim_mints_tokens_after_trading_day(self):
        world = make_micro_world()
        kit = world.kit
        seller = world.account("s", funded_eth=20)
        buyer = world.account("b", funded_eth=20)
        token_id = kit.mint(world.collection_address, seller, day=1)
        kit.marketplace_sale("LooksRare", world.collection_address, token_id, seller, buyer, 5.0, day=1)
        claim_tx = kit.claim_rewards("LooksRare", buyer, day=2)
        assert claim_tx is not None
        looks = world.marketplaces.reward_tokens["LooksRare"]
        assert looks.balanceOf(buyer) > 0
        # The claim transaction's recipient is the distributor contract.
        assert claim_tx.to == world.marketplaces.distributor_addresses["LooksRare"]

    def test_claim_same_day_yields_nothing(self):
        world = make_micro_world()
        kit = world.kit
        seller = world.account("s", funded_eth=20)
        buyer = world.account("b", funded_eth=20)
        token_id = kit.mint(world.collection_address, seller, day=1)
        kit.marketplace_sale("LooksRare", world.collection_address, token_id, seller, buyer, 5.0, day=1)
        assert kit.claim_rewards("LooksRare", buyer, day=1) is None

    def test_both_sides_of_a_trade_accrue_volume(self):
        world = make_micro_world()
        kit = world.kit
        seller = world.account("s", funded_eth=20)
        buyer = world.account("b", funded_eth=20)
        token_id = kit.mint(world.collection_address, seller, day=1)
        kit.marketplace_sale("LooksRare", world.collection_address, token_id, seller, buyer, 5.0, day=1)
        program = world.marketplaces.venue("LooksRare").reward_program
        trading_day = EPOCH_DAY + 1
        assert program.volume_of(seller, trading_day) == eth_to_wei(5)
        assert program.volume_of(buyer, trading_day) == eth_to_wei(5)

    def test_direct_claim_with_nothing_pending_reverts(self):
        world = make_micro_world()
        stranger = world.account("stranger", funded_eth=2)
        with pytest.raises(ContractExecutionError):
            world.chain.transact(
                sender=stranger,
                to=world.marketplaces.distributor_addresses["LooksRare"],
                call=Call("claim", {}),
                timestamp=world.kit.clock.next_timestamp(3),
            )

    def test_opensea_sales_do_not_accrue_rewards(self):
        world = make_micro_world()
        kit = world.kit
        seller = world.account("s", funded_eth=20)
        buyer = world.account("b", funded_eth=20)
        token_id = kit.mint(world.collection_address, seller, day=1)
        kit.marketplace_sale("OpenSea", world.collection_address, token_id, seller, buyer, 5.0, day=1)
        assert kit.claim_rewards("LooksRare", buyer, day=2) is None
