"""The partitioned live path: sharded answers must be bit-identical.

Acceptance bar of the sharding tentpole: a ``ServeService`` running N
read-model shards behind the scatter-gather router must answer every
query family *identically* to the single-index service over the same
chain history -- including under randomized reorg storms, where
retraction revisions and two-phase publication have to hold globally.
On top of the black-box equivalence, the structural invariants are
pinned directly: stable hash routing, disjoint shard slices, the
shared gapless alert log, and per-shard cache isolation (a tick
touching one shard leaves the other shards' cached aggregates warm).
"""

from __future__ import annotations

import random

import pytest

from repro.chain.types import NFTKey
from repro.core.detectors.pipeline import WashTradingPipeline
from repro.ingest.dataset import build_dataset
from repro.serve import (
    GlobalVersion,
    ServeService,
    ShardRouter,
    ShardSpec,
    ShardedServeIndex,
    serving_parity_mismatches,
    shard_of,
    sharded_parity_mismatches,
)
from repro.serve.model import AccountProfile
from repro.serve.sharding import merge_profiles
from repro.simulation.builder import build_default_world
from repro.simulation.config import SimulationConfig

from tests.serve.storm import drive_ticks


def _storm_service(shards: int, seed: int = 7, ticks: int = 14):
    """A serve service driven through a seeded reorg storm.

    Both members of a parity pair replay the *same* storm: the world
    build and the reorg schedule are fully seeded, and the shard count
    never influences monitor progress, so the two services see
    identical chains tick for tick.  A final ``run()`` settles both on
    the same canonical head.
    """
    world = build_default_world(SimulationConfig.tiny())
    service = ServeService.for_world(world, shards=shards)
    drive_ticks(world, service, random.Random(seed), ticks=ticks)
    service.run()
    return world, service


class TestRouting:
    def test_shard_of_is_stable_and_in_range(self):
        nft = NFTKey(contract="0xabc", token_id=17)
        for count in (1, 2, 4, 7):
            slot = shard_of(nft, count)
            assert 0 <= slot < count
            assert slot == shard_of(nft, count), "routing must be pure"

    def test_shard_specs_partition_every_key(self):
        keys = [
            NFTKey(contract=f"0x{i:040x}", token_id=j)
            for i in range(5)
            for j in range(20)
        ]
        specs = [ShardSpec(index=i, count=4) for i in range(4)]
        for nft in keys:
            owners = [spec.index for spec in specs if spec.contains(nft)]
            assert owners == [shard_of(nft, 4)]

    def test_merge_profiles_reproduces_global_record_order(self):
        class Record:
            def __init__(self, seq, key):
                self.seq, self.key = seq, key

        a = AccountProfile(address="0xa", records=(Record(3, "c"), Record(5, "a")))
        b = AccountProfile(address="0xa", records=(Record(1, "b"), Record(4, "d")))
        merged = merge_profiles("0xa", [a, b])
        assert [(r.seq, r.key) for r in merged.records] == [
            (1, "b"),
            (3, "c"),
            (4, "d"),
            (5, "a"),
        ]
        assert merge_profiles("0xa", [a]) is a


class TestShardedParityUnderStorm:
    """Sharded vs single-index equivalence through a reorg storm."""

    @pytest.fixture(scope="class", params=[2, 4])
    def pair(self, request):
        _, single = _storm_service(shards=1)
        world, sharded = _storm_service(shards=request.param)
        return world, single, sharded

    def test_versions_align(self, pair):
        _, single, sharded = pair
        v1, vn = single.query.version(), sharded.query.version()
        assert isinstance(vn, GlobalVersion)
        assert (v1.version, v1.block, v1.last_seq) == (
            vn.version,
            vn.block,
            vn.last_seq,
        )
        assert v1.dirty_token_count == vn.dirty_token_count
        assert v1.retracted_count == vn.retracted_count
        assert v1.newly_confirmed_count == vn.newly_confirmed_count
        assert v1.is_revision == vn.is_revision

    def test_confirmed_listing_is_bit_identical(self, pair):
        _, single, sharded = pair
        v1, vn = single.query.version(), sharded.query.version()
        assert tuple(v1.confirmed) == tuple(vn.confirmed)
        assert v1.token_order == vn.token_order
        assert v1.store_stats == vn.store_stats

    def test_point_lookups_and_profiles_match(self, pair):
        _, single, sharded = pair
        v1, vn = single.query.version(), sharded.query.version()
        assert dict(v1.token_status) == dict(vn.token_status)
        assert dict(v1.account_profiles) == dict(vn.account_profiles)
        assert v1.flagged_nfts == vn.flagged_nfts
        for nft in v1.flagged_nfts:
            assert single.query.token_status(nft) == sharded.query.token_status(
                nft
            )

    def test_aggregates_match(self, pair):
        _, single, sharded = pair
        assert single.query.funnel_stats() == sharded.query.funnel_stats()
        assert single.query.collections() == sharded.query.collections()
        assert single.query.venues() == sharded.query.venues()
        for contract in single.query.collections():
            assert single.query.collection_rollup(
                contract
            ) == sharded.query.collection_rollup(contract)
        for venue in single.query.venues():
            assert single.query.marketplace_rollup(
                venue
            ) == sharded.query.marketplace_rollup(venue)

    def test_pagination_and_alert_replay_match(self, pair):
        _, single, sharded = pair
        cursor1 = cursor_n = None
        while True:
            page1 = single.query.list_confirmed(limit=5, cursor=cursor1)
            page_n = sharded.query.list_confirmed(limit=5, cursor=cursor_n)
            assert page1.records == page_n.records
            assert page1.total_matched == page_n.total_matched
            cursor1, cursor_n = page1.next_cursor, page_n.next_cursor
            if cursor1 is None or cursor_n is None:
                assert cursor1 == cursor_n
                break
        assert single.index.alerts_since(-1) == sharded.index.alerts_since(-1)

    def test_batch_parity_globally_and_per_shard(self, pair):
        world, _, sharded = pair
        batch = WashTradingPipeline(
            labels=world.labels,
            is_contract=world.is_contract,
            engine="columnar",
        ).run(build_dataset(world.node, world.marketplace_addresses))
        assert serving_parity_mismatches(sharded.query, batch) == []
        assert sharded_parity_mismatches(sharded.index, batch) == []


class TestCoordinator:
    def test_rejects_nonpositive_shard_counts(self, tiny_world):
        with pytest.raises(ValueError):
            ServeService.for_world(tiny_world, shards=0)

    def test_router_sits_on_a_sharded_index(self, tiny_world):
        service = ServeService.for_world(tiny_world, shards=3)
        assert isinstance(service.index, ShardedServeIndex)
        assert isinstance(service.query, ShardRouter)
        assert service.query.shard_count == 3
        assert service.cache is None
        assert len(service.index.caches) == 3

    def test_two_phase_publication_is_atomic_to_subscribers(self, tiny_world):
        """A version subscriber must always observe a consistent global
        snapshot: every shard version it holds belongs to the same tick,
        and the shard handles already agree with it."""
        service = ServeService.for_world(tiny_world, shards=4)
        seen = []

        def check(version):
            assert {shard.version for shard in version.shards} == {
                version.version
            }
            for index, shard_version in zip(
                service.index.shards, version.shards
            ):
                assert index.current is shard_version
            seen.append(version.version)

        service.index.subscribe_versions(check)
        service.run()
        assert seen, "ticks must have published"

    def test_shard_slices_are_disjoint_and_exhaustive(self, tiny_world):
        service = ServeService.for_world(tiny_world, shards=4)
        service.run()
        version = service.query.version()
        union = []
        for i, shard_version in enumerate(version.shards):
            for nft in shard_version.token_status:
                assert shard_of(nft, 4) == i
            union.extend(shard_version.token_status)
        assert len(union) == len(set(union))
        assert set(union) == set(version.token_status)

    def test_untouched_shards_reuse_their_version(self, tiny_world):
        """A tick whose dirty slice misses a shard republishes that
        shard's containers by reference (the O(1) fast path)."""
        world = build_default_world(SimulationConfig.tiny())
        service = ServeService.for_world(world, shards=4)
        service.run()
        before = service.query.version()
        # An empty advance (no new blocks) dirties nothing anywhere.
        service.advance(service.monitor.processed_block)
        after = service.query.version()
        for shard_before, shard_after in zip(before.shards, after.shards):
            assert shard_after.confirmed is shard_before.confirmed
            assert shard_after.token_status is shard_before.token_status
            assert shard_after.funnel is shard_before.funnel


class TestDifferentialFunnel:
    def test_maintained_partial_matches_refold_through_a_storm(self):
        """Every published shard version's maintained funnel partial is
        bit-equal to a from-scratch fold over its token states.

        The maintainer applies only per-tick dirty deltas (including
        retire-only deltas for reorg-vanished tokens), so holding this
        through a reorg storm proves the per-token stage statistics
        really are invertible -- no drift, no residue from retracted
        tokens.
        """
        import dataclasses

        from repro.serve.router import funnel_partial
        from tests.serve.storm import storm_tick

        world = build_default_world(SimulationConfig.tiny())
        service = ServeService.for_world(world, shards=3)
        rng = random.Random(11)
        checked = 0
        for _ in range(12):
            storm_tick(world, service, rng)
            for shard_version in service.query.version().shards:
                maintained = shard_version.funnel
                assert maintained is not None
                refold = funnel_partial(
                    dataclasses.replace(shard_version, funnel=None)
                )
                assert maintained.candidate_count == refold.candidate_count
                assert maintained.confirmed_count == refold.confirmed_count
                assert [
                    stage.to_stage() for stage in maintained.stages
                ] == [stage.to_stage() for stage in refold.stages]
                checked += 1
        assert checked > 0

    def test_single_index_versions_carry_no_partial(self, tiny_world):
        """The monolithic index keeps its recompute-from-states design;
        only shard versions pay for (and carry) the maintained partial."""
        service = ServeService.for_world(tiny_world)
        service.run()
        assert service.query.version().funnel is None
