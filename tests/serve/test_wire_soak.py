"""Multi-client soak over the wire against live ingest + reorg storm.

The satellite bar (ISSUE 5): N wire clients run the mixed read workload
(the same :class:`~repro.serve.load.LoadGenerator` the benchmarks and
the serve CLI use, pointed at a socket through
:class:`~repro.serve.wire.RemoteQueryService`) while the main thread
drives ingest through a :class:`~repro.simulation.reorg.ReorgStorm`.
When the dust settles:

* no client ever observed two different answers from one pinned
  version -- checked continuously by a dedicated auditor thread that
  re-asks questions at pinned versions across ticks and revisions;
* the replaying mirror reconstructs exactly the served confirmed set,
  retractions included;
* the final wire answers equal the in-process service at the settled
  version (wire parity), which in turn equals a causally-clamped batch
  build over the final canonical chain (serving parity) -- so the
  socket, the in-process API and the paper's batch pipeline all agree.
"""

from __future__ import annotations

import random
import threading
import time
from collections import Counter

from repro.serve import (
    RemoteQueryService,
    ServeService,
    WireClient,
    record_key,
    serving_parity_mismatches,
    wire_parity_mismatches,
)
from repro.serve.load import LoadGenerator
from repro.simulation.builder import build_default_world
from repro.simulation.config import SimulationConfig
from repro.simulation.reorg import ReorgStorm
from repro.stream import AlertKind

from tests.serve.storm import storm_tick
from tests.serve.test_serve_reorg import batch_at

READER_COUNT = 3


class PinAuditor:
    """Asks the same questions at pinned versions, across ticks.

    Remembers the first answer observed for every (version, question)
    pair -- over its whole lifetime, so a version revisited many ticks
    (and reorg revisions) later must still answer bit-identically --
    and records every divergence in ``problems``.
    """

    def __init__(self, host: str, port: int, stop: threading.Event) -> None:
        self.client = WireClient(host, port)
        self.stop = stop
        self.problems: list = []
        self.checks = 0
        self.answers: dict = {}
        self.thread = threading.Thread(target=self.run, daemon=True)

    def _observe(self, version: int, question: str, payload) -> None:
        key = (version, question)
        first = self.answers.setdefault(key, payload)
        if first != payload:
            self.problems.append(
                f"version {version} changed its answer to {question}"
            )
        self.checks += 1

    def step(self) -> None:
        info = self.client.version()
        number = info["version"]
        self._observe(number, "version-info", info)
        # Ask everything twice back to back: ticks and rollbacks land
        # between the two reads all the time at storm cadence.
        for _ in range(2):
            self._observe(
                number, "funnel", self.client.funnel_stats(version=number)
            )
            tokens = self.client.token_order(version=number)["tokens"]
            self._observe(number, "token-order", tokens)
            if tokens:
                contract, token_id = tokens[0]
                self._observe(
                    number,
                    "first-token-status",
                    self.client.token_status(contract, token_id, version=number),
                )
            self._observe(
                number,
                "first-page",
                self.client.list_confirmed(limit=5, version=number),
            )

    def run(self) -> None:
        try:
            self.client.connect()
            while not self.stop.is_set():
                self.step()
            self.step()  # one settled pass
        except Exception as error:  # noqa: BLE001 - surfaced by the assert
            self.problems.append(repr(error))
        finally:
            self.client.close()


def test_wire_soak_under_reorg_storm():
    world = build_default_world(SimulationConfig.tiny())
    service = ServeService.for_world(world, max_reorg_depth=64)
    server = service.serve_wire()
    host, port = server.address

    stop = threading.Event()
    remotes = [RemoteQueryService(host, port) for _ in range(READER_COUNT)]
    generators = [
        LoadGenerator(remote, seed=500 + slot, stop=stop, mirror=(slot == 0))
        for slot, remote in enumerate(remotes)
    ]
    auditor = PinAuditor(host, port, stop)
    for generator in generators:
        generator.thread.start()
    auditor.thread.start()

    # The writer: follow the chain to its (reorganizing) head, then keep
    # the head churning with further adversarial reorgs for a while --
    # the readers soak against revisions, not just fresh blocks -- and
    # finally one settling tick over the last canonical chain.
    rng = random.Random(20230314)
    storm = ReorgStorm(world, rng, max_depth=13)
    summaries = storm.run(service.monitor)
    churn_deadline = time.perf_counter() + 1.5
    while time.perf_counter() < churn_deadline:
        storm_tick(world, service, rng)
    service.advance()

    # Let the mirror's replay connection drain before freezing readers.
    mirror_cursor = generators[0]._cursor
    deadline = time.perf_counter() + 30
    while mirror_cursor.position < service.index.last_seq:
        assert time.perf_counter() < deadline, (
            f"mirror cursor stalled at {mirror_cursor.position} / "
            f"{service.index.last_seq}"
        )
        time.sleep(0.02)
    stop.set()
    for generator in generators:
        generator.thread.join(timeout=30)
        assert not generator.thread.is_alive()
    auditor.thread.join(timeout=30)
    assert not auditor.thread.is_alive()

    try:
        # Every reader finished clean; the storm actually stormed.
        for generator in generators:
            assert generator.errors == [], generator.errors[:3]
        assert auditor.problems == [], auditor.problems[:3]
        assert auditor.checks > 0
        assert summaries, "the storm never reorganized the chain"
        assert sum(generator.queries for generator in generators) > 0
        # The soak must have exercised the revision path, not just growth.
        kinds = {alert.kind for alert in service.index.alerts_since(-1)}
        assert AlertKind.REORG_DETECTED in kinds
        assert AlertKind.ACTIVITY_RETRACTED in kinds

        # The replaying mirror reconstructed the served truth exactly.
        final = service.query.version()
        assert +generators[0].mirror == Counter(
            record.key for record in final.confirmed
        )
        assert final.confirmed_activity_count > 0

        # Wire == in-process at the settled version...
        with WireClient(host, port) as client:
            assert (
                wire_parity_mismatches(
                    client.connect(), service.query, server.lookup_version
                )
                == []
            )
        # ...and in-process == causally-clamped batch over the final
        # canonical chain, so the socket agrees with the paper pipeline.
        batch = batch_at(world, service.monitor.processed_block)
        assert serving_parity_mismatches(service.query, batch) == []
    finally:
        for remote in remotes:
            remote.close()
        service.shutdown()
