"""Behavioural tests of the serving layer's read model and query API.

Serving parity (every answer vs a batch build) is the acceptance bar;
on top of it this file pins the version/snapshot contract, pagination
and filter semantics, replay cursors, the aggregate cache's precise
invalidation, and the late-attach bootstrap.
"""

from __future__ import annotations

import pytest

from repro.chain.types import NFTKey
from repro.core.activity import DetectionMethod
from repro.core.detectors.pipeline import WashTradingPipeline
from repro.ingest.dataset import build_dataset
from repro.serve import (
    AggregateCache,
    ServeIndex,
    ServeService,
    serving_parity_mismatches,
)
from repro.serve.cache import FUNNEL_SCOPE, collection_scope, venue_scope
from repro.serve.query import QueryService
from repro.stream import StreamingMonitor


@pytest.fixture(scope="module")
def tiny_columnar_batch(tiny_world):
    dataset = build_dataset(tiny_world.node, tiny_world.marketplace_addresses)
    result = WashTradingPipeline(
        labels=tiny_world.labels,
        is_contract=tiny_world.is_contract,
        engine="columnar",
    ).run(dataset)
    return result


@pytest.fixture(scope="module")
def served(tiny_world):
    """A service fully driven over the tiny world."""
    service = ServeService.for_world(tiny_world)
    service.run(step_blocks=29)
    return service


class TestVersions:
    def test_version_zero_is_empty(self, tiny_world):
        service = ServeService.for_world(tiny_world)
        version = service.query.version()
        assert version.version == 0
        assert version.block == -1
        assert version.last_seq == -1
        assert version.confirmed == ()
        assert version.flagged_nfts == frozenset()
        assert not version.is_revision

    def test_versions_are_monotone_and_tick_aligned(self, tiny_world):
        service = ServeService.for_world(tiny_world)
        versions = []
        service.index.subscribe_versions(versions.append)
        service.run(step_blocks=50)
        numbers = [version.version for version in versions]
        assert numbers == sorted(numbers)
        assert len(set(numbers)) == len(numbers)
        assert numbers[-1] == service.monitor.tick_count

    def test_published_version_is_immutable_under_later_ticks(self, tiny_world):
        service = ServeService.for_world(tiny_world)
        head = tiny_world.node.block_number
        pinned = service.advance(head // 2)
        confirmed_then = pinned.confirmed
        flagged_then = set(pinned.token_status)
        service.run(step_blocks=29)
        # The pinned version still answers exactly as it did.
        assert pinned.confirmed is confirmed_then
        assert set(pinned.token_status) == flagged_then
        assert service.query.version().confirmed_activity_count >= len(
            confirmed_then
        )

    def test_full_serving_parity(self, served, tiny_columnar_batch):
        assert serving_parity_mismatches(served.query, tiny_columnar_batch) == []

    def test_poison_version_subscriber_is_isolated(self, tiny_world):
        """A raising version callback must not starve later subscribers."""
        service = ServeService.for_world(tiny_world)
        received = []

        def poison(version):
            raise RuntimeError("version subscriber exploded")

        service.index.subscribe_versions(poison)
        service.index.subscribe_versions(received.append)
        service.run(step_blocks=50)
        assert [v.version for v in received] == list(
            range(1, service.monitor.tick_count + 1)
        )
        assert service.index.subscriber_errors
        callback, version, error = service.index.subscriber_errors[0]
        assert callback is poison and isinstance(error, RuntimeError)
        # The monitor never saw the failure -- the index isolated it.
        assert service.monitor.subscriber_errors == []

    def test_late_attach_bootstrap(self, tiny_world, tiny_columnar_batch):
        """An index attached mid-follow adopts existing state and alerts."""
        monitor = StreamingMonitor.for_world(tiny_world)
        head = tiny_world.node.block_number
        monitor.run(to_block=head // 2, step_blocks=29)
        index = ServeIndex(monitor)
        assert index.current.version == monitor.tick_count
        assert index.current.flagged_nfts == monitor.scheduler.flagged_nfts
        assert index.current.confirmed_activity_count == (
            monitor.scheduler.confirmed_activity_count
        )
        assert len(index.alert_log) == len(monitor.alerts)
        monitor.run(step_blocks=29)
        query = QueryService(index)
        assert serving_parity_mismatches(query, tiny_columnar_batch) == []
        # Replay from scratch still covers the pre-attach history.
        assert len(query.replay().poll()) == len(monitor.alerts)

    def test_late_attach_keeps_confirmation_coordinates(self, tiny_world):
        """Adopted records carry their true confirmation seq/block.

        The regression: bootstrapping with empty confirmation info
        stamped every pre-attach record with seq -1 and the attach-time
        head block, so ``list_confirmed(since_block=)`` filtered on the
        wrong coordinates.  The alerts are adopted anyway -- fold them.
        """
        from_start = ServeService.for_world(tiny_world)
        from_start.run(step_blocks=29)

        monitor = StreamingMonitor.for_world(tiny_world)
        monitor.run(step_blocks=29)
        late = QueryService(ServeIndex(monitor))

        reference = {
            record.key: (record.seq, record.confirmed_at_block)
            for record in from_start.query.version().confirmed
        }
        adopted = {
            record.key: (record.seq, record.confirmed_at_block)
            for record in late.version().confirmed
        }
        assert adopted == reference
        midpoint = from_start.query.version().block // 2
        assert [
            r.key
            for r in late.list_confirmed(
                since_block=midpoint, limit=10_000
            ).records
        ] == [
            r.key
            for r in from_start.query.list_confirmed(
                since_block=midpoint, limit=10_000
            ).records
        ]


class TestPointLookups:
    def test_token_status_shapes(self, served, tiny_columnar_batch):
        nft = tiny_columnar_batch.activities[0].nft
        status = served.query.token_status(nft)
        assert status.is_washed
        assert status.records[0].confirmed_at_block >= 0
        assert status.records[0].seq >= 0
        by_parts = served.query.token_status(nft.contract, nft.token_id)
        assert by_parts == status

    def test_clean_and_unknown_tokens(self, served):
        unknown = NFTKey(contract="0x" + "9" * 40, token_id=7)
        status = served.query.token_status(unknown)
        assert not status.is_washed
        assert status.records == ()
        with pytest.raises(ValueError):
            served.query.token_status("0x" + "9" * 40)

    def test_account_profile_contents(self, served, tiny_columnar_batch):
        account = sorted(tiny_columnar_batch.activities[0].accounts)[0]
        profile = served.query.account_profile(account)
        assert profile.is_implicated
        assert account not in profile.partners
        assert profile.nfts <= {a.nft for a in tiny_columnar_batch.activities}
        clean = served.query.account_profile("0x" + "8" * 40)
        assert not clean.is_implicated and clean.activity_count == 0


class TestListing:
    def test_pagination_covers_exactly_once(self, served):
        version = served.query.version()
        seen = []
        cursor = None
        while True:
            page = served.query.list_confirmed(
                limit=4, cursor=cursor, version=version
            )
            assert len(page.records) <= 4
            seen.extend(record.key for record in page.records)
            if page.next_cursor is None:
                break
            cursor = page.next_cursor
        assert seen == [record.key for record in version.confirmed]
        assert len(set(seen)) == len(seen)

    def test_filters_match_brute_force(self, served):
        version = served.query.version()
        for method in DetectionMethod:
            page = served.query.list_confirmed(
                method=method, limit=10_000, version=version
            )
            expected = [
                record for record in version.confirmed if method in record.methods
            ]
            assert list(page.records) == expected
            assert page.total_matched == len(expected)
        for venue in served.query.venues(version=version):
            page = served.query.list_confirmed(
                venue=venue, limit=10_000, version=version
            )
            assert all(record.venue == venue for record in page.records)
            assert page.total_matched == sum(
                1 for record in version.confirmed if record.venue == venue
            )
        midpoint = version.block // 2
        page = served.query.list_confirmed(
            since_block=midpoint, limit=10_000, version=version
        )
        assert all(
            record.confirmed_at_block >= midpoint for record in page.records
        )

    def test_limit_validation(self, served):
        with pytest.raises(ValueError):
            served.query.list_confirmed(limit=0)


class TestReplay:
    def test_full_replay_equals_alert_stream(self, served):
        cursor = served.query.replay()
        alerts = cursor.poll()
        assert list(alerts) == served.monitor.alerts
        assert [alert.seq for alert in alerts] == list(range(len(alerts)))
        assert cursor.poll() == ()
        assert cursor.lag == 0

    def test_resume_from_midpoint(self, served):
        total = len(served.monitor.alerts)
        midpoint = total // 2
        cursor = served.query.replay(since_seq=midpoint - 1)
        assert cursor.lag == total - midpoint
        batch = cursor.poll(limit=3)
        assert [alert.seq for alert in batch] == [midpoint, midpoint + 1, midpoint + 2]
        rest = cursor.poll()
        assert rest[-1].seq == total - 1


class TestAggregateCache:
    def test_cache_unit_precision(self):
        cache = AggregateCache()
        calls = []
        value = cache.get_or_compute(
            "a", (collection_scope("0xaa"),), lambda: calls.append(1) or "A"
        )
        assert value == "A"
        assert cache.get_or_compute(
            "a", (collection_scope("0xaa"),), lambda: calls.append(1) or "A2"
        ) == "A"
        cache.get_or_compute("b", (collection_scope("0xbb"),), lambda: "B")
        cache.get_or_compute("f", (FUNNEL_SCOPE,), lambda: "F")
        assert len(calls) == 1 and len(cache) == 3

        # Invalidating one collection leaves the others untouched.
        dropped = cache.invalidate({collection_scope("0xaa"), FUNNEL_SCOPE})
        assert dropped == 2
        assert cache.get_or_compute(
            "b", (collection_scope("0xbb"),), lambda: "B-recomputed"
        ) == "B"
        assert cache.get_or_compute(
            "a", (collection_scope("0xaa"),), lambda: "A-fresh"
        ) == "A-fresh"
        assert cache.invalidate(()) == 0

    def test_racing_invalidation_discards_the_store(self):
        cache = AggregateCache()

        def compute():
            # A tick invalidates the scope mid-computation.
            cache.invalidate({venue_scope("OpenSea")})
            return "stale-for-next-gen"

        assert (
            cache.get_or_compute("v", (venue_scope("OpenSea"),), compute)
            == "stale-for-next-gen"
        )
        # The racy value must not have been cached.
        assert (
            cache.get_or_compute("v", (venue_scope("OpenSea"),), lambda: "fresh")
            == "fresh"
        )
        assert cache.stats.stale_discards == 1

    def test_integration_untouched_scopes_survive_ticks(self, tiny_world):
        service = ServeService.for_world(tiny_world)
        service.run(step_blocks=29)
        first = service.query.funnel_stats()
        hits_before = service.cache.stats.hits
        assert service.query.funnel_stats() is first
        # An empty tick dirties nothing, so the cache stays warm.
        service.advance()
        assert service.query.funnel_stats() is first
        assert service.cache.stats.hits == hits_before + 2

    def test_uncached_service_still_answers(self, tiny_world):
        service = ServeService.for_world(tiny_world, use_cache=False)
        service.run(step_blocks=50)
        assert service.cache is None
        first = service.query.funnel_stats()
        second = service.query.funnel_stats()
        assert first == second and first is not second
