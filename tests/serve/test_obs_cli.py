"""Subprocess tests of the observability CLI surface (ISSUE 9).

``repro probe`` and ``repro top`` against a live ``serve --listen``
node, the typed SLO_BREACH path forced end-to-end through the wire
(tiny error budget + a client hammering bad requests mid-ingest), and
the reporter's exactly-once final flush observed from outside on
SIGINT/SIGTERM -- the satellite regressions that need a real process
and real signals.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time

import pytest

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def spawn(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(REPO_SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )


def run_cli(*args, timeout=120):
    proc = spawn(*args)
    out, err = proc.communicate(timeout=timeout)
    return proc.returncode, out, err


def wait_for_listen_line(proc) -> tuple:
    line = proc.stdout.readline()
    match = re.match(r"wire: listening on (\S+):(\d+)", line)
    assert match, f"expected the listening line first, got {line!r}"
    return match.group(1), int(match.group(2))


@pytest.fixture()
def serving():
    """A live ``serve --listen --shards 4`` subprocess with SLOs armed."""
    proc = spawn(
        "serve",
        "--preset",
        "tiny",
        "--step-blocks",
        "50",
        "--shards",
        "4",
        "--listen",
        "127.0.0.1:0",
        "--slo-latency-p95",
        "30",
        "--slo-error-rate",
        "0.5",
    )
    try:
        host, port = wait_for_listen_line(proc)
        yield proc, host, port
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGINT)
            try:
                proc.communicate(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.communicate()


class TestProbe:
    def test_healthy_node_is_exit_zero_with_json(self, serving):
        _, host, port = serving
        code, out, err = run_cli("probe", f"{host}:{port}")
        assert code == 0, (out, err)
        health = json.loads(out)
        assert health["status"] == "ok"
        assert health["ingest"]["crashed"] is False
        assert health["publish"]["shards"] == 4
        assert "subscriber_queue_pressure" in health["wire"]
        assert set(health["slo"]) == {
            "alert-latency-total-p95",
            "wire-error-rate",
        }

    def test_quiet_probe_prints_nothing_on_stdout(self, serving):
        _, host, port = serving
        code, out, err = run_cli("probe", f"{host}:{port}", "--quiet")
        assert code == 0, err
        assert out == ""

    def test_unreachable_is_exit_two(self):
        code, out, err = run_cli("probe", "127.0.0.1:1", timeout=60)
        assert code == 2
        assert json.loads(out)["status"] == "unreachable"
        assert "unreachable" in err


class TestTop:
    def test_once_renders_a_snapshot(self, serving):
        _, host, port = serving
        code, out, err = run_cli("top", f"{host}:{port}", "--once")
        assert code == 0, (out, err)
        assert out.startswith("repro top")
        assert "status:" in out
        assert f"{host}:{port}" in out
        assert "slo      alert-latency-total-p95" in out
        # No ANSI clear in single-snapshot mode (pipable output).
        assert "\x1b[2J" not in out

    def test_once_json_is_machine_readable(self, serving):
        _, host, port = serving
        code, out, err = run_cli("top", f"{host}:{port}", "--once", "--json")
        assert code == 0, err
        payload = json.loads(out)
        assert "metrics" in payload["stats"]
        assert payload["health"]["status"] in ("ok", "degraded")

    def test_unreachable_once_is_exit_two(self):
        code, out, err = run_cli("top", "127.0.0.1:1", "--once", timeout=60)
        assert code == 2
        assert "unreachable" in err


class TestForcedSLOBreach:
    def test_blown_error_budget_emits_typed_alert_and_degrades(self):
        """A tiny error budget plus a client hammering bad requests
        mid-ingest must blow the wire-error-rate budget: a SLO_BREACH
        alert lands on the wire alert log, the budget gauge pins >= 1,
        and the health surface drops to degraded (probe exit 1)."""
        from repro.serve.wire import WireClient, WireRequestError

        proc = spawn(
            "serve",
            "--preset",
            "tiny",
            "--step-blocks",
            "2",
            "--query-threads",
            "0",
            "--listen",
            "127.0.0.1:0",
            "--slo-error-rate",
            "0.0001",
            "--slo-window",
            "4",
            "--slo-budget",
            "0.25",
            "--quiet",
        )
        try:
            host, port = wait_for_listen_line(proc)
            breach = None
            deadline = time.time() + 90
            with WireClient(host, port, timeout=10.0) as client:
                while breach is None and time.time() < deadline:
                    # Each round: a burst of guaranteed request errors
                    # for the evaluation interval to classify as bad...
                    for _ in range(5):
                        try:
                            client.request("token-status")  # missing params
                        except WireRequestError:
                            pass
                    # ...then check whether the breach got published.
                    log = client.alerts(since_seq=-1)
                    for alert in log["alerts"]:
                        if alert["kind"] == "slo-breach":
                            breach = alert
                            break
                assert breach is not None, "budget never blew within deadline"
                assert breach["slo"] == "wire-error-rate"
                assert breach["budget_used"] >= 1.0
                assert breach["detail"]
                assert breach["trace"]
                gauges = client.stats()["metrics"]["gauges"]
                assert gauges['slo_healthy{slo="wire-error-rate"}'] == 0
                assert gauges['slo_budget_used{slo="wire-error-rate"}'] >= 1.0
            # The blown budget shows on the health ladder.
            code, out, _ = run_cli("probe", f"{host}:{port}")
            assert code == 1, out
            assert json.loads(out)["status"] == "degraded"
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGINT)
                try:
                    proc.communicate(timeout=60)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.communicate()


class TestReporterShutdownRace:
    def _final_flush_count(self, signum, tmp_path):
        """Run serve with a never-firing stats interval; every ``stats:``
        line seen is therefore a final flush -- the exactly-once bar is
        observable as exactly one such line."""
        metrics_path = str(tmp_path / "metrics.prom")
        proc = spawn(
            "serve",
            "--preset",
            "tiny",
            "--step-blocks",
            "2",
            "--query-threads",
            "1",
            "--stats-interval",
            "3600",
            "--metrics-out",
            metrics_path,
            "--quiet",
        )
        time.sleep(1.0)  # land mid-ingest, where the race lived
        proc.send_signal(signum)
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, (proc.returncode, err)
        assert "Traceback" not in err
        return out.count("stats:"), metrics_path

    def test_sigint_mid_ingest_flushes_exactly_once(self, tmp_path):
        from repro.obs import parse_prometheus

        flushes, metrics_path = self._final_flush_count(
            signal.SIGINT, tmp_path
        )
        assert flushes == 1
        # The flush also wrote a complete, parseable exposition.
        with open(metrics_path, encoding="utf-8") as handle:
            samples = parse_prometheus(handle.read())
        assert samples, "final flush left an empty exposition"

    def test_sigterm_mid_ingest_flushes_exactly_once(self, tmp_path):
        flushes, _ = self._final_flush_count(signal.SIGTERM, tmp_path)
        assert flushes == 1
