"""Shared serving-layer fixtures.

The wire tests need a server over a *settled* service (ingest complete,
versions stable); building the world and running ingest dominates the
cost, so one server is shared per session by everything that only reads
through it.  Tests that mutate the chain (reorg storms) or need special
server tuning (tiny subscriber queues) build their own.
"""

from __future__ import annotations

import pytest

from repro.serve import ServeService


@pytest.fixture(scope="session")
def settled_wire(tiny_world):
    """A wire server over a fully ingested tiny world: (service, server)."""
    service = ServeService.for_world(tiny_world)
    service.run()
    server = service.serve_wire()
    yield service, server
    service.shutdown()
