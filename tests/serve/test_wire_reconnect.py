"""Reconnect/replay and backpressure: the subscription contract.

Two satellites of ISSUE 5 live here:

* a subscriber that disconnects mid-stream and resubscribes from its
  last ``seq`` receives every confirmation and retraction exactly once,
  in order, across the reconnect -- while ingest keeps ticking and the
  chain keeps reorganizing in between;
* a subscriber that cannot keep up is not buffered without bound: the
  server sends one typed ``subscriber-overflow`` event carrying the
  last delivered ``seq`` and closes, and resubscribing from that cursor
  resumes with no gap and no duplicate.
"""

from __future__ import annotations

import random
import time
from collections import Counter

from repro.serve import ServeService, WireClient, record_key
from repro.serve.wire.server import WireServer
from repro.simulation.builder import build_default_world
from repro.simulation.config import SimulationConfig
from repro.stream import AlertKind

from tests.serve.storm import drive_ticks, storm_tick


def collect_until(stream, target_seq, deadline_seconds=30):
    """Drain a stream until an alert with ``seq >= target_seq`` arrives."""
    collected = []
    deadline = time.perf_counter() + deadline_seconds
    while True:
        alert = stream.next(timeout=0.2)
        if alert is not None:
            collected.append(alert)
            if alert.seq >= target_seq:
                return collected
        assert time.perf_counter() < deadline, (
            f"stream stalled before seq {target_seq}; got "
            f"{collected[-1].seq if collected else 'nothing'}"
        )


def test_resubscribe_from_last_seq_is_exactly_once_in_order():
    world = build_default_world(SimulationConfig.tiny())
    service = ServeService.for_world(world, max_reorg_depth=64)
    server = service.serve_wire()
    host, port = server.address
    rng = random.Random(77)

    try:
        # Segment 1: subscribe from the very beginning, consume while
        # ingest ticks and the chain reorganizes, then vanish mid-stream.
        first_client = WireClient(host, port).connect()
        first_stream = first_client.subscribe(-1)
        drive_ticks(world, service, rng, ticks=8)
        midpoint_seq = service.index.last_seq
        assert midpoint_seq >= 0
        received = collect_until(first_stream, midpoint_seq)
        first_stream.close()  # the disconnect: no unsubscribe, no goodbye

        # The world moves on while the subscriber is gone.
        drive_ticks(world, service, rng, ticks=8)

        # Segment 2: resubscribe from exactly the last seq applied.
        resume_from = received[-1].seq
        second_client = WireClient(host, port).connect()
        second_stream = second_client.subscribe(resume_from)
        drive_ticks(world, service, rng, ticks=4)
        service.advance()  # settle the final revision
        final_seq = service.index.last_seq
        received.extend(collect_until(second_stream, final_seq))
        second_stream.close()

        # Exactly once, in order, across the reconnect.
        seqs = [alert.seq for alert in received]
        assert seqs == list(range(final_seq + 1))

        # And the folded stream reconstructs the served truth --
        # confirmations minus retractions, evidence drift included.
        mirror: Counter = Counter()
        retractions = 0
        for alert in received:
            if alert.kind is AlertKind.ACTIVITY_CONFIRMED:
                mirror[record_key(alert.activity)] += 1
            elif alert.kind is AlertKind.ACTIVITY_RETRACTED:
                mirror[record_key(alert.activity)] -= 1
                retractions += 1
                assert mirror[record_key(alert.activity)] >= 0, (
                    "retraction without a matching confirmation"
                )
        final = service.query.version()
        assert +mirror == Counter(record.key for record in final.confirmed)
        assert retractions > 0, "the run never exercised a retraction"
        assert final.confirmed_activity_count > 0
    finally:
        service.shutdown()


def test_slow_subscriber_gets_typed_overflow_and_resumes_cleanly():
    world = build_default_world(SimulationConfig.tiny())
    service = ServeService.for_world(world, max_reorg_depth=64)
    # A deliberately tiny live queue so backpressure trips quickly; the
    # default server stays untouched on its own port.
    server = WireServer(service.query, subscriber_queue_size=4).start()
    host, port = server.address
    rng = random.Random(99)

    try:
        client = WireClient(host, port).connect()
        stream = client.subscribe(service.index.last_seq)

        # Find the server-side connection and freeze its delivery by
        # holding the send lock -- a subscriber that stopped reading,
        # made deterministic.
        handler = None
        deadline = time.perf_counter() + 10
        while handler is None and time.perf_counter() < deadline:
            with server._lock:
                for connection in server._connections:
                    if connection._subscriber is not None:
                        handler = connection
                        break
            time.sleep(0.01)
        assert handler is not None
        subscriber = handler._subscriber

        with handler.send_lock:
            # Ingest outruns the frozen subscriber: the bounded queue
            # fills and the fan-out marks it overflowed instead of
            # buffering without limit.
            deadline = time.perf_counter() + 30
            while not subscriber.overflowed:
                assert time.perf_counter() < deadline, "overflow never tripped"
                storm_tick(world, service, rng)
            assert subscriber.queue.qsize() <= 4

        # Released: the pusher drains what was queued, sends the typed
        # goodbye and closes the connection.
        assert stream.closed.wait(timeout=30)
        assert stream.overflow_seq is not None
        delivered = stream.poll()
        if delivered:
            assert delivered[-1].seq == stream.overflow_seq
        assert server.stats()["overflows"] == 1

        # Resuming from the advertised cursor covers the rest exactly
        # once: no gap at the overflow point, no duplicates.
        service.advance()
        resume = WireClient(host, port).connect()
        resumed_stream = resume.subscribe(stream.overflow_seq)
        tail = collect_until(resumed_stream, service.index.last_seq)
        resumed_stream.close()
        seqs = [alert.seq for alert in delivered] + [alert.seq for alert in tail]
        assert seqs == list(
            range(delivered[0].seq if delivered else tail[0].seq, service.index.last_seq + 1)
        )
    finally:
        server.close()
        service.shutdown()
