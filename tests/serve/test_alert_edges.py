"""Edge semantics of the ``alerts_since`` replay primitive.

The replay contract is exclusive-start (``seq`` is the last alert the
consumer already applied), so three boundaries matter and are easy to
get wrong off-by-one: a cursor sitting exactly at the log head (the
common steady state -- must return nothing and stay put), a cursor past
the head (a consumer that outlived a server restart -- must return
nothing rather than raise or wrap), and degenerate limits (the
in-process API treats ``limit=0`` as "nothing", while the wire verb
rejects non-positive limits up front, before the index is consulted).
Pinned in-process against both the single and the sharded index, and
through the socket.
"""

from __future__ import annotations

import pytest

from repro.serve import ServeService
from repro.serve.wire import WireClient, WireRequestError


@pytest.fixture(scope="module", params=[1, 4], ids=["single", "sharded"])
def settled_index(request, tiny_world):
    """A fully ingested index (both topologies answer identically)."""
    service = ServeService.for_world(tiny_world, shards=request.param)
    service.run()
    return service.index


class TestInProcessEdges:
    def test_cursor_at_head_returns_nothing(self, settled_index):
        head = settled_index.last_seq
        assert head >= 0, "ingest must have published alerts"
        assert settled_index.alerts_since(head) == ()
        assert settled_index.alerts_since(head, limit=5) == ()

    def test_cursor_one_below_head_returns_exactly_the_head(self, settled_index):
        head = settled_index.last_seq
        batch = settled_index.alerts_since(head - 1)
        assert len(batch) == 1
        assert batch[0].seq == head

    def test_cursor_past_head_returns_nothing(self, settled_index):
        head = settled_index.last_seq
        assert settled_index.alerts_since(head + 1) == ()
        assert settled_index.alerts_since(head + 1000, limit=10) == ()

    def test_limit_zero_is_an_empty_batch(self, settled_index):
        assert settled_index.alerts_since(-1, limit=0) == ()

    def test_full_replay_is_gapless_from_any_negative_cursor(
        self, settled_index
    ):
        everything = settled_index.alerts_since(-1)
        assert [alert.seq for alert in everything] == list(
            range(settled_index.last_seq + 1)
        )
        # Any more-negative cursor clamps to the same full history.
        assert settled_index.alerts_since(-50) == everything

    def test_replay_cursor_poll_at_head_keeps_position(self, settled_index):
        from repro.serve import AlertReplayCursor

        cursor = AlertReplayCursor(settled_index, settled_index.last_seq)
        assert cursor.lag == 0
        assert cursor.poll() == ()
        assert cursor.position == settled_index.last_seq


class TestWireEdges:
    def test_cursor_at_and_past_head(self, settled_wire):
        service, server = settled_wire
        head = service.index.last_seq
        with WireClient(*server.address) as client:
            at_head = client.alerts(since_seq=head)
            assert at_head["alerts"] == []
            assert at_head["last_seq"] == head
            past = client.alerts(since_seq=head + 1000)
            assert past["alerts"] == []
            assert past["last_seq"] == head

    def test_limit_zero_is_rejected_before_the_index(self, settled_wire):
        _, server = settled_wire
        with WireClient(*server.address) as client:
            with pytest.raises(WireRequestError) as excinfo:
                client.alerts(since_seq=-1, limit=0)
            assert excinfo.value.code == "bad-request"
            with pytest.raises(WireRequestError):
                client.alerts(since_seq=-1, limit=-3)
            # The connection survives the rejection: the next well-formed
            # request answers normally.
            assert client.alerts(since_seq=-1, limit=1)["alerts"]

    def test_limited_replay_pages_to_the_head(self, settled_wire):
        service, server = settled_wire
        head = service.index.last_seq
        with WireClient(*server.address) as client:
            seqs = []
            cursor = -1
            while True:
                batch = client.alerts(since_seq=cursor, limit=3)["alerts"]
                if not batch:
                    break
                seqs.extend(alert["seq"] for alert in batch)
                cursor = batch[-1]["seq"]
            assert seqs == list(range(head + 1))
