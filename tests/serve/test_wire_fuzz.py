"""Protocol fuzzing: hostile bytes must never take the server down.

The containment contract under test (ISSUE 5 satellite): truncated
frames, oversized length prefixes, invalid JSON, unknown verbs,
malformed parameters and mid-frame disconnects each yield a typed error
response (or a clean close when the byte stream is unrecoverable) --
and never kill the server, never poison other connections.  Every test
ends by proving the server still answers a well-formed request.
"""

from __future__ import annotations

import json
import random
import socket
import struct
import threading

import pytest

from repro.serve.wire import WireClient, WireRequestError, read_frame, write_frame
from repro.serve.wire.framing import DEFAULT_MAX_FRAME_BYTES


def raw_connection(server):
    host, port = server.address
    sock = socket.create_connection((host, port), 10)
    sock.settimeout(10)
    return sock


def send_raw(sock, payload: bytes) -> None:
    sock.sendall(payload)


def frame_bytes(body: bytes) -> bytes:
    return struct.pack(">I", len(body)) + body


def read_response(sock) -> dict:
    return read_frame(sock.makefile("rb"))


def assert_server_alive(server) -> None:
    """The ultimate check of every fuzz case: a clean request still works."""
    with WireClient(*server.address) as client:
        assert client.ping()["pong"] is True


class TestFrameLevelAttacks:
    def test_truncated_frame_then_disconnect(self, settled_wire):
        _, server = settled_wire
        sock = raw_connection(server)
        send_raw(sock, struct.pack(">I", 100) + b"only ten b")
        sock.close()
        assert_server_alive(server)

    def test_partial_length_prefix_then_disconnect(self, settled_wire):
        _, server = settled_wire
        sock = raw_connection(server)
        send_raw(sock, b"\x00\x00")
        sock.close()
        assert_server_alive(server)

    def test_oversized_length_prefix_gets_typed_error_then_close(
        self, settled_wire
    ):
        _, server = settled_wire
        sock = raw_connection(server)
        send_raw(sock, struct.pack(">I", DEFAULT_MAX_FRAME_BYTES + 1))
        rfile = sock.makefile("rb")
        response = read_frame(rfile)
        assert response["ok"] is False
        assert response["error"]["code"] == "frame-too-large"
        # The stream position is unrecoverable: the server closes.
        assert rfile.read(1) == b""
        sock.close()
        assert_server_alive(server)

    def test_invalid_json_gets_typed_error_and_connection_survives(
        self, settled_wire
    ):
        _, server = settled_wire
        sock = raw_connection(server)
        rfile, wfile = sock.makefile("rb"), sock.makefile("wb")
        send_raw(sock, frame_bytes(b"{nope nope nope"))
        response = read_frame(rfile)
        assert response["ok"] is False
        assert response["error"]["code"] == "bad-json"
        # Framing stayed in sync: the same connection still answers.
        write_frame(wfile, {"id": 5, "verb": "ping"})
        response = read_frame(rfile)
        assert response["ok"] is True and response["id"] == 5
        sock.close()

    def test_non_object_payload_is_bad_json(self, settled_wire):
        _, server = settled_wire
        sock = raw_connection(server)
        rfile, wfile = sock.makefile("rb"), sock.makefile("wb")
        for payload in (b"[1,2,3]", b'"hello"', b"42", b"null", b""):
            send_raw(sock, frame_bytes(payload))
            response = read_frame(rfile)
            assert response["ok"] is False
            assert response["error"]["code"] == "bad-json"
        write_frame(wfile, {"id": 1, "verb": "ping"})
        assert read_frame(rfile)["ok"] is True
        sock.close()

    def test_mid_frame_disconnect_with_abort(self, settled_wire):
        _, server = settled_wire
        for _ in range(5):
            sock = raw_connection(server)
            send_raw(sock, struct.pack(">I", 5000) + b"x" * 100)
            # RST instead of FIN: the rudest possible goodbye.
            sock.setsockopt(
                socket.SOL_SOCKET,
                socket.SO_LINGER,
                struct.pack("ii", 1, 0),
            )
            sock.close()
        assert_server_alive(server)


class TestRequestLevelAttacks:
    @pytest.fixture()
    def client(self, settled_wire):
        _, server = settled_wire
        with WireClient(*server.address) as client:
            yield client

    def assert_code(self, client, code, verb, **params):
        with pytest.raises(WireRequestError) as excinfo:
            client.request(verb, **params)
        assert excinfo.value.code == code, excinfo.value

    def test_unknown_verb(self, client):
        self.assert_code(client, "unknown-verb", "drop_all_tables")

    def test_missing_verb(self, settled_wire):
        _, server = settled_wire
        sock = raw_connection(server)
        rfile = sock.makefile("rb")
        send_raw(sock, frame_bytes(json.dumps({"id": 1}).encode()))
        response = read_frame(rfile)
        assert response["ok"] is False
        assert response["error"]["code"] == "bad-request"
        sock.close()

    def test_non_object_params(self, settled_wire):
        _, server = settled_wire
        sock = raw_connection(server)
        rfile = sock.makefile("rb")
        request = {"id": 1, "verb": "ping", "params": [1, 2]}
        send_raw(sock, frame_bytes(json.dumps(request).encode()))
        assert read_frame(rfile)["error"]["code"] == "bad-request"
        sock.close()

    def test_missing_and_mistyped_parameters(self, client):
        self.assert_code(client, "bad-request", "token_status")
        self.assert_code(
            client, "bad-request", "token_status", contract=7, token_id=1
        )
        self.assert_code(
            client, "bad-request", "token_status", contract="0xabc", token_id="one"
        )
        self.assert_code(
            client, "bad-request", "token_status", contract="0xabc", token_id=True
        )
        self.assert_code(client, "bad-request", "account_profile")
        self.assert_code(client, "bad-request", "collection_rollup")
        self.assert_code(client, "bad-request", "marketplace_rollup", venue=3.5)

    def test_bad_listing_parameters(self, client):
        self.assert_code(client, "bad-request", "list_confirmed", limit=0)
        self.assert_code(client, "bad-request", "list_confirmed", limit=-3)
        self.assert_code(client, "bad-request", "list_confirmed", limit="ten")
        self.assert_code(
            client, "bad-request", "list_confirmed", method="mind-reading"
        )
        self.assert_code(
            client, "bad-request", "list_confirmed", cursor=["bogus"]
        )
        self.assert_code(
            client, "bad-request", "list_confirmed", cursor={"seq": 1}
        )

    def test_bad_version_references(self, client):
        self.assert_code(client, "bad-request", "funnel_stats", version="seven")
        self.assert_code(client, "unknown-version", "funnel_stats", version=12345)
        self.assert_code(client, "bad-request", "release")

    def test_internal_errors_are_typed_not_fatal(self, client, monkeypatch):
        """A handler bug surfaces as internal-error on that request only."""
        from repro.serve.wire.server import WireConnectionHandler

        def explode(self, params):
            raise RuntimeError("synthetic handler bug")

        monkeypatch.setitem(WireConnectionHandler.VERBS, "funnel_stats", explode)
        self.assert_code(client, "internal-error", "funnel_stats")
        # Same connection, same server: everything else still answers.
        assert client.ping()["pong"] is True


class TestGarbageStorm:
    def test_random_garbage_never_poisons_valid_clients(self, settled_wire):
        """Seeded storm of garbage connections beside a correct client."""
        service, server = settled_wire
        rng = random.Random(20230313)
        errors: list = []
        stop = threading.Event()

        def well_behaved_reader():
            try:
                with WireClient(*server.address) as client:
                    while not stop.is_set():
                        version = client.version()
                        funnel = client.funnel_stats(version=version["version"])
                        if funnel["version"] != version["version"]:
                            errors.append("funnel answered at the wrong version")
                        client.release(version["version"])
            except Exception as error:  # noqa: BLE001 - recorded for assert
                errors.append(repr(error))

        reader = threading.Thread(target=well_behaved_reader, daemon=True)
        reader.start()
        try:
            for round_number in range(60):
                sock = raw_connection(server)
                shape = rng.random()
                if shape < 0.3:
                    # Pure noise, no framing at all.
                    sock.sendall(rng.randbytes(rng.randint(1, 300)))
                elif shape < 0.5:
                    # Honest frame, garbage payload.
                    sock.sendall(frame_bytes(rng.randbytes(rng.randint(0, 200))))
                elif shape < 0.7:
                    # Honest frame, random JSON of the wrong shape.
                    document = rng.choice(
                        [
                            [1, 2, 3],
                            {"verb": rng.randbytes(4).hex()},
                            {"verb": "token_status", "params": {"contract": None}},
                            {"params": {"x": 1}},
                            {"verb": ["subscribe"]},
                        ]
                    )
                    sock.sendall(frame_bytes(json.dumps(document).encode()))
                elif shape < 0.85:
                    # Truncated frame: declare more than is sent.
                    declared = rng.randint(10, 5000)
                    sock.sendall(
                        struct.pack(">I", declared)
                        + rng.randbytes(rng.randint(0, declared - 1))
                    )
                else:
                    # Oversized declaration.
                    sock.sendall(
                        struct.pack(">I", DEFAULT_MAX_FRAME_BYTES + rng.randint(1, 1000))
                    )
                sock.close()
        finally:
            stop.set()
            reader.join(timeout=30)
        assert errors == []
        assert_server_alive(server)
        # The storm was actually observed by the server, not ignored.
        with WireClient(*server.address) as client:
            assert client.stats()["frame_errors"] > 0
