"""Subprocess tests of the wire CLI surface and the graceful shutdown.

The shutdown satellite of ISSUE 5: ``python -m repro serve`` on
``SIGINT``/``SIGTERM`` must close the listener, drain in-flight
requests, join ingest and exit 0 -- previously the threaded loop could
die with a ``KeyboardInterrupt`` traceback.  Signal delivery only works
on a real process, so these tests drive the CLI through ``subprocess``;
the ``query`` CLI assertions double as the wire-smoke recipe CI runs.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time

import pytest

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def spawn(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(REPO_SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )


def run_cli(*args, timeout=120):
    proc = spawn(*args)
    out, err = proc.communicate(timeout=timeout)
    return proc.returncode, out, err


def wait_for_listen_line(proc) -> tuple:
    line = proc.stdout.readline()
    match = re.match(r"wire: listening on (\S+):(\d+)", line)
    assert match, f"expected the listening line first, got {line!r}"
    return match.group(1), int(match.group(2))


@pytest.fixture()
def serving():
    """A live ``serve --listen`` subprocess; yields (proc, host, port)."""
    proc = spawn(
        "serve",
        "--preset",
        "tiny",
        "--step-blocks",
        "50",
        "--listen",
        "127.0.0.1:0",
    )
    try:
        host, port = wait_for_listen_line(proc)
        yield proc, host, port
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGINT)
            try:
                proc.communicate(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.communicate()


class TestGracefulShutdown:
    def test_sigint_mid_ingest_exits_zero_without_traceback(self):
        # Slow, tiny ticks so the interrupt almost certainly lands
        # mid-ingest; a post-ingest interrupt must behave the same.
        # --verify rides along: against a partial prefix it must be
        # skipped (with a note), never reported as a parity failure.
        proc = spawn(
            "serve",
            "--preset",
            "tiny",
            "--step-blocks",
            "2",
            "--query-threads",
            "2",
            "--verify",
        )
        time.sleep(1.0)
        proc.send_signal(signal.SIGINT)
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, (proc.returncode, err)
        assert "Traceback" not in err
        assert "KeyboardInterrupt" not in err
        assert "parity mismatch" not in err
        assert "/serve]" in out  # the summary still prints

    def test_ingest_crash_reports_failure_not_traceback(self, monkeypatch, capsys):
        """A crashed ingest thread is exit 2 + message, even with --listen."""
        from repro.__main__ import main
        from repro.stream.monitor import StreamingMonitor

        def explode(self, to_block=None):
            raise RuntimeError("synthetic ingest crash")

        monkeypatch.setattr(StreamingMonitor, "advance", explode)
        code = main(
            ["serve", "--preset", "tiny", "--listen", "127.0.0.1:0", "--quiet"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "ingest failed" in captured.err
        assert "synthetic ingest crash" in captured.err

    def test_sigint_while_listening_drains_and_exits_zero(self, serving):
        proc, host, port = serving
        # Wait until ingest finished and the server is in its linger
        # phase, then interrupt.
        code, out, err = run_cli(
            "query", "--connect", f"{host}:{port}", "ping"
        )
        assert code == 0, err
        proc.send_signal(signal.SIGINT)
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, (proc.returncode, err)
        assert "Traceback" not in err
        assert "wire: shut down cleanly" in out

    def test_sigterm_is_graceful_too(self):
        proc = spawn(
            "serve",
            "--preset",
            "tiny",
            "--step-blocks",
            "50",
            "--listen",
            "127.0.0.1:0",
            "--quiet",
        )
        wait_for_listen_line(proc)
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, (proc.returncode, err)
        assert "Traceback" not in err


class TestQueryCli:
    def test_query_verbs_against_live_server(self, serving):
        proc, host, port = serving
        connect = ("--connect", f"{host}:{port}")

        code, out, err = run_cli("query", *connect, "ping")
        assert code == 0 and json.loads(out)["pong"] is True

        # Poll until ingest has confirmed something.
        deadline = time.time() + 60
        while True:
            code, out, err = run_cli("query", *connect, "version")
            assert code == 0, err
            version = json.loads(out)
            if version["confirmed_activity_count"] > 0:
                break
            assert time.time() < deadline, "ingest never confirmed anything"
            time.sleep(0.5)

        code, out, _ = run_cli("query", *connect, "token-status", "0x" + "9" * 40, "7")
        assert code == 0 and json.loads(out)["is_washed"] is False

        code, out, _ = run_cli("query", *connect, "list", "--limit", "3")
        page = json.loads(out)
        assert code == 0 and len(page["records"]) <= 3
        assert page["total_matched"] >= len(page["records"])

        code, out, _ = run_cli("query", *connect, "collections")
        collections = json.loads(out)["collections"]
        assert code == 0 and collections
        code, out, _ = run_cli("query", *connect, "collection", collections[0])
        assert code == 0 and json.loads(out)["contract"] == collections[0]

        code, out, _ = run_cli("query", *connect, "funnel")
        assert code == 0 and len(json.loads(out)["stages"]) == 4

        code, out, _ = run_cli("query", *connect, "alerts", "--limit", "2")
        assert code == 0 and len(json.loads(out)["alerts"]) == 2

        code, out, _ = run_cli(
            "query", *connect, "subscribe", "--since-seq", "-1", "--max-alerts", "3"
        )
        lines = out.strip().splitlines()
        assert code == 0 and [json.loads(line)["seq"] for line in lines] == [0, 1, 2]

    def test_query_server_error_is_exit_2(self, serving):
        _, host, port = serving
        code, out, err = run_cli(
            "query",
            "--connect",
            f"{host}:{port}",
            "list",
            "--method",
            "mind-reading",
        )
        assert code == 2
        assert "bad-request" in err

    def test_query_connection_refused_is_exit_1(self):
        code, out, err = run_cli(
            "query", "--connect", "127.0.0.1:1", "ping", timeout=60
        )
        assert code == 1
        assert "cannot connect" in err
