"""The ``stats`` wire verb: the live introspection surface over TCP.

Three bars.  The payload keeps its original top-level socket counters
(older clients read those) while the full registry snapshot rides under
``metrics``; per-verb request counters and latency histograms track the
requests a client actually made; and -- the accounting acceptance bar
-- after a reorg storm the counters must *reconcile exactly* with the
ground truth next to them: reorg and retraction counters equal the
matching alert counts, per-kind alert counters equal the monitor's
alert log, and the published-version counter equals the index's own
tally.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.obs import MetricsRegistry
from repro.serve import ServeService
from repro.serve.wire import WireClient, WireRequestError
from repro.simulation.builder import build_default_world
from repro.simulation.config import SimulationConfig
from repro.stream.alerts import AlertKind
from tests.serve.storm import drive_ticks


@pytest.fixture(scope="module")
def instrumented_wire():
    """A wire server over an instrumented, fully ingested tiny world."""
    registry = MetricsRegistry()
    world = build_default_world(SimulationConfig.tiny())
    service = ServeService.for_world(world, registry=registry)
    service.run()
    server = service.serve_wire()
    yield registry, service, server
    service.shutdown()


@pytest.fixture()
def client(instrumented_wire):
    _, _, server = instrumented_wire
    with WireClient(*server.address) as connected:
        yield connected


class TestStatsVerb:
    def test_payload_keeps_socket_counters_and_adds_metrics(self, client):
        stats = client.stats()
        # The pre-obs surface older clients read.
        for key in ("requests", "connections", "frame_errors", "overflows"):
            assert key in stats
        # The registry snapshot rides alongside.
        metrics = stats["metrics"]
        assert set(metrics) >= {"counters", "gauges", "histograms"}

    def test_ingest_metrics_visible_over_the_wire(self, client):
        metrics = client.stats()["metrics"]
        counters = metrics["counters"]
        assert counters["cursor_blocks_ingested_total"] > 0
        assert counters["cursor_transfers_ingested_total"] > 0
        assert counters["monitor_ticks_total"] > 0
        assert counters["serve_versions_published_total"] > 0
        assert metrics["histograms"]['span_seconds{span="tick"}']["count"] > 0

    def test_per_verb_counters_and_latency_track_requests(self, client):
        def verb_count(stats, verb):
            return stats["metrics"]["counters"].get(
                f'wire_requests_total{{verb="{verb}"}}', 0
            )

        before = client.stats()
        for _ in range(3):
            client.ping()
        after = client.stats()
        assert verb_count(after, "ping") == verb_count(before, "ping") + 3
        # The stats verb counts itself too.
        assert verb_count(after, "stats") == verb_count(before, "stats") + 1
        latency = after["metrics"]["histograms"][
            'wire_request_seconds{verb="ping"}'
        ]
        assert latency["count"] == verb_count(after, "ping")
        assert latency["sum"] >= 0.0

    def test_unknown_verbs_clamp_to_one_label(self, client):
        with pytest.raises(WireRequestError):
            client.request("definitely-not-a-verb")
        with pytest.raises(WireRequestError):
            client.request("another-invention")
        counters = client.stats()["metrics"]["counters"]
        assert counters['wire_requests_total{verb="unknown"}'] >= 2
        invented = [
            name
            for name in counters
            if "definitely-not-a-verb" in name or "another-invention" in name
        ]
        assert invented == [], "fuzzable input must not mint metric names"

    def test_cache_counters_ride_along(self, client):
        client.funnel_stats()
        client.funnel_stats()
        metrics = client.stats()["metrics"]
        assert metrics["counters"]["serve_cache_hits_total"] >= 1
        assert "serve_cache_hit_ratio" in metrics["gauges"]

    def test_socket_gauges_come_from_collectors(self, client):
        metrics = client.stats()["metrics"]
        assert metrics["gauges"]["wire_active_connections"] >= 1
        assert metrics["counters"]["wire_connections_total"] >= 1

    def test_in_process_snapshot_matches_wire_view(self, instrumented_wire):
        registry, service, server = instrumented_wire
        with WireClient(*server.address) as connected:
            wire_counters = connected.stats()["metrics"]["counters"]
        local_counters = service.metrics_snapshot()["counters"]
        # Ingest-side counters are settled; they must agree exactly.
        for name in (
            "cursor_blocks_ingested_total",
            "monitor_ticks_total",
            "serve_versions_published_total",
        ):
            assert wire_counters[name] == local_counters[name]


class TestStatsUnderReorgStorm:
    @pytest.fixture(scope="class")
    def stormed(self):
        registry = MetricsRegistry()
        world = build_default_world(SimulationConfig.tiny())
        service = ServeService.for_world(
            world, max_reorg_depth=64, registry=registry
        )
        # Tick against a churning head so reorgs land in the journal
        # window and are actually *detected*, not just absorbed.
        drive_ticks(world, service, random.Random(7), ticks=40, reorg_every=3)
        server = service.serve_wire()
        with WireClient(*server.address) as connected:
            stats = connected.stats()
        yield registry, service, stats
        service.shutdown()

    def test_storm_actually_stormed(self, stormed):
        _, service, _ = stormed
        kinds = Counter(alert.kind for alert in service.monitor.alerts)
        assert kinds[AlertKind.REORG_DETECTED] > 0
        assert kinds[AlertKind.ACTIVITY_RETRACTED] > 0

    def test_reorg_counter_matches_reorg_alerts(self, stormed):
        _, service, stats = stormed
        counters = stats["metrics"]["counters"]
        reorg_alerts = sum(
            1
            for alert in service.monitor.alerts
            if alert.kind is AlertKind.REORG_DETECTED
        )
        assert counters["cursor_reorgs_total"] == reorg_alerts

    def test_retraction_counter_matches_retraction_alerts(self, stormed):
        _, service, stats = stormed
        counters = stats["metrics"]["counters"]
        retractions = sum(
            1
            for alert in service.monitor.alerts
            if alert.kind is AlertKind.ACTIVITY_RETRACTED
        )
        assert counters["scheduler_retractions_total"] == retractions

    def test_per_kind_alert_counters_match_the_log(self, stormed):
        _, service, stats = stormed
        counters = stats["metrics"]["counters"]
        kinds = Counter(alert.kind.value for alert in service.monitor.alerts)
        for kind in AlertKind:
            name = f'monitor_alerts_total{{kind="{kind.value}"}}'
            assert counters[name] == kinds.get(kind.value, 0), name

    def test_versions_counter_matches_the_index(self, stormed):
        _, service, stats = stormed
        counters = stats["metrics"]["counters"]
        assert (
            counters["serve_versions_published_total"]
            == service.index.versions_published
        )

    def test_reorg_depth_histogram_saw_every_reorg(self, stormed):
        _, service, stats = stormed
        depths = stats["metrics"]["histograms"]["cursor_reorg_depth_blocks"]
        reorg_alerts = [
            alert
            for alert in service.monitor.alerts
            if alert.kind is AlertKind.REORG_DETECTED
        ]
        assert depths["count"] == len(reorg_alerts)
        assert depths["max"] == max(a.reorg_depth for a in reorg_alerts)
