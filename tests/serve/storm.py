"""Shared chain-churn driver for the wire soak/reconnect batteries.

One place for the advance-against-a-reorganizing-head step the wire
tests repeat: when the monitor has caught the head, reorganize the tail
so there is always something adversarial to ingest, then advance a
random bounded stride (with an optional extra mid-sequence reorg).
"""

from __future__ import annotations

from repro.simulation.reorg import apply_random_reorg


def storm_tick(world, service, rng, extra_reorg: bool = False) -> None:
    """One monitor advance against a churning head."""
    if service.monitor.processed_block >= world.node.block_number:
        apply_random_reorg(
            world.chain, rng.randint(1, 10), rng, drop_probability=0.35
        )
    service.advance(
        min(
            world.node.block_number,
            service.monitor.processed_block + rng.randint(10, 60),
        )
    )
    if extra_reorg:
        apply_random_reorg(
            world.chain, rng.randint(1, 8), rng, drop_probability=0.3
        )


def drive_ticks(world, service, rng, ticks: int, reorg_every: int = 3) -> None:
    """Advance tick by tick, reorganizing every ``reorg_every`` ticks."""
    for tick in range(ticks):
        storm_tick(
            world,
            service,
            rng,
            extra_reorg=(tick % reorg_every == reorg_every - 1),
        )
