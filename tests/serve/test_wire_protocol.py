"""Wire protocol basics: framing, codec round trips, the verb surface.

The adversarial batteries live next door (``test_wire_fuzz``,
``test_wire_soak``, ``test_wire_reconnect``); this file pins the happy
path -- every verb answers, answers match the in-process service
exactly (the wire parity bar), version pinning is explicit and typed,
and pagination over the wire walks the listing exactly once.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.serve import record_key
from repro.serve.wire import (
    FrameDecodeError,
    FrameTooLargeError,
    TruncatedFrameError,
    ConnectionClosed,
    WireClient,
    WireRequestError,
    encode_frame,
    read_frame,
    wire_parity_mismatches,
    write_frame,
)
from repro.serve.wire import codec
from repro.stream.alerts import AlertKind


class TestFraming:
    def test_round_trip(self):
        buffer = io.BytesIO()
        write_frame(buffer, {"verb": "ping", "id": 7})
        buffer.seek(0)
        assert read_frame(buffer) == {"verb": "ping", "id": 7}

    def test_multiple_frames_stay_in_sync(self):
        buffer = io.BytesIO()
        for index in range(5):
            write_frame(buffer, {"n": index})
        buffer.seek(0)
        assert [read_frame(buffer)["n"] for _ in range(5)] == list(range(5))

    def test_clean_eof_is_connection_closed(self):
        with pytest.raises(ConnectionClosed):
            read_frame(io.BytesIO(b""))

    def test_eof_inside_prefix_is_truncated(self):
        with pytest.raises(TruncatedFrameError):
            read_frame(io.BytesIO(b"\x00\x00"))

    def test_eof_inside_body_is_truncated(self):
        frame = encode_frame({"verb": "ping"})
        with pytest.raises(TruncatedFrameError):
            read_frame(io.BytesIO(frame[:-3]))

    def test_oversized_declared_length_rejected_before_reading(self):
        buffer = io.BytesIO(b"\xff\xff\xff\xff")
        with pytest.raises(FrameTooLargeError) as excinfo:
            read_frame(buffer, max_bytes=1024)
        assert excinfo.value.declared == 0xFFFFFFFF
        assert excinfo.value.limit == 1024

    def test_bad_json_payload(self):
        body = b"{definitely not json"
        frame = len(body).to_bytes(4, "big") + body
        with pytest.raises(FrameDecodeError):
            read_frame(io.BytesIO(frame))

    def test_non_object_payload(self):
        body = json.dumps([1, 2, 3]).encode()
        frame = len(body).to_bytes(4, "big") + body
        with pytest.raises(FrameDecodeError):
            read_frame(io.BytesIO(frame))

    def test_zero_length_frame_is_bad_json(self):
        with pytest.raises(FrameDecodeError):
            read_frame(io.BytesIO(b"\x00\x00\x00\x00"))


class TestCodec:
    def test_alert_round_trip_preserves_identity(self, settled_wire):
        service, _ = settled_wire
        alerts = service.index.alerts_since(-1)
        assert alerts, "settled world should have produced alerts"
        for alert in alerts:
            decoded = codec.decode_alert(
                json.loads(json.dumps(codec.encode_alert(alert)))
            )
            assert decoded.kind is alert.kind
            assert decoded.seq == alert.seq
            assert decoded.block == alert.block
            if alert.activity is not None:
                assert record_key(decoded.activity) == record_key(alert.activity)
                assert decoded.activity.methods == alert.activity.methods
                assert (
                    decoded.activity.component.dominant_marketplace()
                    == alert.activity.component.dominant_marketplace()
                )

    def test_page_cursor_round_trip(self, settled_wire):
        service, _ = settled_wire
        version = service.query.version()
        record = version.confirmed[0]
        cursor = (record.seq, record.key)
        encoded = json.loads(json.dumps(codec.encode_page_cursor(cursor)))
        assert codec.decode_page_cursor(encoded) == cursor
        assert codec.decode_page_cursor(None) is None


class TestVerbs:
    @pytest.fixture()
    def client(self, settled_wire):
        _, server = settled_wire
        with WireClient(*server.address) as client:
            yield client

    def test_ping(self, client):
        answer = client.ping()
        assert answer["pong"] is True
        assert answer["protocol"] == codec.PROTOCOL_VERSION

    def test_full_wire_parity(self, settled_wire, client):
        service, server = settled_wire
        assert (
            wire_parity_mismatches(client, service.query, server.lookup_version)
            == []
        )

    def test_version_pins_and_release_unpins(self, client):
        info = client.version()
        number = info["version"]
        # Pinned: answering at that version works.
        client.funnel_stats(version=number)
        assert client.release(number) is True
        with pytest.raises(WireRequestError) as excinfo:
            client.funnel_stats(version=number)
        assert excinfo.value.code == "unknown-version"
        assert client.release(number) is False

    def test_unpinned_version_is_typed_error(self, client):
        with pytest.raises(WireRequestError) as excinfo:
            client.token_status("0x" + "0" * 40, 1, version=999_999)
        assert excinfo.value.code == "unknown-version"

    def test_pagination_walks_exactly_once(self, settled_wire, client):
        service, _ = settled_wire
        number = client.version()["version"]
        seen = []
        cursor = None
        while True:
            page = client.list_confirmed(limit=4, cursor=cursor, version=number)
            seen.extend(tuple(codec.decode_record_key(r["key"])) for r in page["records"])
            if page["next_cursor"] is None:
                break
            cursor = page["next_cursor"]
        expected = [record.key for record in service.query.version().confirmed]
        assert seen == expected

    def test_filters_match_in_process(self, settled_wire, client):
        service, _ = settled_wire
        number = client.version()["version"]
        for venue in client.venues(version=number):
            wire_page = client.list_confirmed(venue=venue, version=number, limit=1000)
            local_page = service.query.list_confirmed(venue=venue, limit=1000)
            assert wire_page["total_matched"] == local_page.total_matched

    def test_unpinned_wire_aggregates_hit_the_cache(self, settled_wire, client):
        service, _ = settled_wire
        assert service.cache is not None
        baseline = service.cache.stats.hits
        for _ in range(3):
            client.funnel_stats()  # no version param: the cached path
        assert service.cache.stats.hits >= baseline + 2

    def test_stats_counts_requests(self, client):
        before = client.stats()["requests"]
        client.ping()
        after = client.stats()["requests"]
        assert after >= before + 2  # the ping and the stats call itself

    def test_unsubscribe_returns_connection_to_request_mode(self, settled_wire):
        import socket as socket_module

        _, server = settled_wire
        host, port = server.address
        sock = socket_module.create_connection((host, port), 10)
        sock.settimeout(10)
        rfile, wfile = sock.makefile("rb"), sock.makefile("wb")
        try:
            write_frame(wfile, {"id": 1, "verb": "subscribe", "params": {"since_seq": -1}})
            response = read_frame(rfile)
            assert response["ok"] and response["result"]["subscribed"]
            write_frame(wfile, {"id": 2, "verb": "unsubscribe"})
            # Alert events stream until the unsubscribe lands; scan for
            # its response among them.
            seen_alert = False
            for _ in range(10_000):
                frame = read_frame(rfile)
                if frame.get("event") == "alert":
                    seen_alert = True
                    continue
                assert frame["id"] == 2 and frame["result"]["unsubscribed"]
                break
            else:
                raise AssertionError("unsubscribe response never arrived")
            assert seen_alert, "replay should have delivered alerts first"
            # Plain request/response still works on the same connection.
            write_frame(wfile, {"id": 3, "verb": "ping"})
            for _ in range(10_000):
                frame = read_frame(rfile)
                if frame.get("event") == "alert":
                    continue
                assert frame["id"] == 3 and frame["result"]["pong"]
                break
        finally:
            sock.close()

    def test_subscribe_twice_is_typed_error(self, settled_wire):
        service, server = settled_wire
        client = WireClient(*server.address).connect()
        try:
            # Subscribe at the tail: a valid cursor, nothing to replay.
            client.request("subscribe", since_seq=service.index.last_seq)
            with pytest.raises(WireRequestError) as excinfo:
                client.request("subscribe", since_seq=-1)
            assert excinfo.value.code == "already-subscribed"
        finally:
            client.close()

    def test_subscribe_above_horizon_is_typed_error(self, settled_wire):
        service, server = settled_wire
        client = WireClient(*server.address).connect()
        try:
            with pytest.raises(WireRequestError) as excinfo:
                client.request(
                    "subscribe", since_seq=service.index.last_seq + 1
                )
            assert excinfo.value.code == "cursor-above-horizon"
            # The refusal left the connection in request mode.
            assert client.ping()["pong"] is True
        finally:
            client.close()

    def test_remote_replay_cursor_limit_preserves_order(self, settled_wire):
        from repro.serve.wire import RemoteReplayCursor

        service, server = settled_wire
        cursor = RemoteReplayCursor(*server.address)
        last_seq = service.index.last_seq
        seqs = []
        import time as time_module

        deadline = time_module.time() + 10
        while (not seqs or seqs[-1] < last_seq) and time_module.time() < deadline:
            seqs.extend(alert.seq for alert in cursor.poll(limit=3))
        assert seqs == list(range(last_seq + 1))
        assert cursor.position == last_seq
        cursor.close()

    def test_replayed_alerts_match_log(self, settled_wire):
        service, server = settled_wire
        client = WireClient(*server.address).connect()
        stream = client.subscribe(-1)
        expected = service.index.last_seq + 1
        received = []
        while len(received) < expected:
            alert = stream.next(timeout=5)
            assert alert is not None, f"stream stalled at {len(received)}/{expected}"
            received.append(alert)
        assert [alert.seq for alert in received] == list(range(expected))
        kinds = {alert.kind for alert in received}
        assert AlertKind.ACTIVITY_CONFIRMED in kinds
        stream.close()
