"""Concurrency proofs for the serving layer.

One ingest thread ticks the monitor while reader threads hammer the
query API.  The contract under test: every answer comes from one
immutable version (no torn reads, ever), versions observed by a reader
never move backwards, and a version pinned mid-flight stays bit-stable
however many ticks land afterwards.
"""

from __future__ import annotations

import threading

from repro.serve import ServeService
from repro.simulation.builder import build_default_world
from repro.simulation.config import SimulationConfig


def check_internal_consistency(version) -> list:
    """Cross-field invariants that tear if a version mixed two ticks."""
    problems = []
    if frozenset(version.token_status) != {
        record.nft for record in version.confirmed
    }:
        problems.append(f"v{version.version}: flagged set != confirmed tokens")
    per_token = sum(
        status.activity_count for status in version.token_status.values()
    )
    if per_token != version.confirmed_activity_count:
        problems.append(
            f"v{version.version}: token statuses hold {per_token} records, "
            f"listing holds {version.confirmed_activity_count}"
        )
    for record in version.confirmed:
        if record not in version.token_status[record.nft].records:
            problems.append(
                f"v{version.version}: {record.key} missing from its token"
            )
            break
        for account in record.accounts:
            profile = version.account_profiles.get(account)
            if profile is None or record not in profile.records:
                problems.append(
                    f"v{version.version}: {account} missing record "
                    f"{record.key}"
                )
                break
    return problems


class TestConcurrentReads:
    def test_readers_see_monotone_consistent_versions(self):
        world = build_default_world(SimulationConfig.tiny())
        service = ServeService.for_world(world)
        problems: list = []
        reader_count = 4

        def reader(slot: int) -> None:
            last = -1
            local: list = []
            while not service.done.is_set() or last < 0:
                version = service.query.version()
                if version.version < last:
                    local.append(
                        f"reader {slot}: version regressed "
                        f"{last} -> {version.version}"
                    )
                    break
                last = version.version
                local.extend(check_internal_consistency(version))
                if local:
                    break
                # Exercise the query surface against the same version.
                if version.confirmed:
                    record = version.confirmed[0]
                    status = service.query.token_status(
                        record.nft, version=version
                    )
                    if record not in status.records:
                        local.append(f"reader {slot}: point lookup tore")
                        break
                service.query.funnel_stats()
            local.extend(check_internal_consistency(service.query.version()))
            problems.extend(local)

        threads = [
            threading.Thread(target=reader, args=(slot,), daemon=True)
            for slot in range(reader_count)
        ]
        for thread in threads:
            thread.start()
        service.start_background(step_blocks=7)
        assert service.join(timeout=120)
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive()
        assert problems == []
        assert service.query.version().confirmed_activity_count > 0

    def test_pinned_version_is_stable_across_background_ingest(self):
        world = build_default_world(SimulationConfig.tiny())
        service = ServeService.for_world(world)
        head = world.node.block_number
        pinned = service.advance(head // 3)
        keys = [record.key for record in pinned.confirmed]
        order = pinned.token_order
        service.start_background(step_blocks=11)
        assert service.join(timeout=120)
        assert [record.key for record in pinned.confirmed] == keys
        assert pinned.token_order == order
        final = service.query.version()
        assert final.version > pinned.version
        assert final.block == head

    def test_stop_interrupts_background_ingest(self):
        world = build_default_world(SimulationConfig.tiny())
        service = ServeService.for_world(world)
        service.start_background(step_blocks=1, tick_delay=0.005)
        service.stop(timeout=120)
        assert service.done.is_set()
        # A second service cannot reuse the thread slot.
        import pytest

        with pytest.raises(RuntimeError):
            service.start_background()

    def test_ingest_crash_is_surfaced_not_swallowed(self):
        """A dying ingest thread must not masquerade as completion."""
        import pytest

        world = build_default_world(SimulationConfig.tiny())
        service = ServeService.for_world(world)

        def explode(*args, **kwargs):
            raise ConnectionError("node fell over")

        service.monitor.node.iter_blocks = explode
        service.start_background(step_blocks=29)
        assert service.done.wait(timeout=120)
        with pytest.raises(ConnectionError):
            service.join(timeout=120)
        assert isinstance(service.ingest_error, ConnectionError)

    def test_background_run_matches_inline_run(self):
        world = build_default_world(SimulationConfig.tiny())
        background = ServeService.for_world(world)
        background.start_background(step_blocks=29)
        assert background.join(timeout=120)
        inline = ServeService.for_world(world)
        inline.run(step_blocks=29)
        left = background.query.version()
        right = inline.query.version()
        assert [r.key for r in left.confirmed] == [r.key for r in right.confirmed]
        assert left.flagged_nfts == right.flagged_nfts
        assert background.query.funnel_stats(version=left) == inline.query.funnel_stats(
            version=right
        )
