"""Serving under chain reorganizations.

The satellite bar: a query stream interleaved with a :class:`ReorgStorm`
never observes a retracted activity without a matching revision in the
alert stream, version numbers stay monotone, and -- the serving parity
acceptance criterion -- every published version (including mid-storm
revisions) equals a fresh batch build over that canonical chain prefix.
"""

from __future__ import annotations

import random
from collections import Counter

from repro.chain.node import EthereumNode
from repro.core.detectors.pipeline import WashTradingPipeline
from repro.ingest.dataset import build_dataset
from repro.serve import ServeService, record_key, serving_parity_mismatches
from repro.simulation.builder import build_default_world
from repro.simulation.config import SimulationConfig
from repro.simulation.reorg import ReorgStorm, apply_random_reorg
from repro.stream import AlertKind


def fresh_world():
    return build_default_world(SimulationConfig.tiny())


class ClampedNode(EthereumNode):
    """Archive view hiding everything past ``upper`` (causal prefix)."""

    def __init__(self, node, upper):
        super().__init__(node.chain)
        self._upper = upper

    def get_transactions_of(self, address):
        return [
            tx
            for tx in super().get_transactions_of(address)
            if tx.block_number <= self._upper
        ]


def batch_at(world, block):
    dataset = build_dataset(
        ClampedNode(world.node, block), world.marketplace_addresses, to_block=block
    )
    return WashTradingPipeline(
        labels=world.labels, is_contract=world.is_contract, engine="columnar"
    ).run(dataset)


def fold_alerts(alerts):
    """Confirmations minus retractions, asserting no orphan retraction."""
    folded: Counter = Counter()
    for alert in alerts:
        if alert.kind is AlertKind.ACTIVITY_CONFIRMED:
            folded[record_key(alert.activity)] += 1
        elif alert.kind is AlertKind.ACTIVITY_RETRACTED:
            key = record_key(alert.activity)
            folded[key] -= 1
            assert folded[key] >= 0, (
                f"retraction of {key} at seq {alert.seq} without a matching "
                f"prior confirmation"
            )
    return +folded


class TestServeUnderReorgStorm:
    def test_revision_stream_is_consistent_at_every_version(self):
        """Fold(alert log up to version.last_seq) == version.confirmed."""
        world = fresh_world()
        service = ServeService.for_world(world, max_reorg_depth=64)
        versions = []
        service.index.subscribe_versions(versions.append)
        storm = ReorgStorm(
            world,
            random.Random(7),
            reorg_probability=0.45,
            max_depth=13,
            drop_probability=0.3,
            delay_probability=0.25,
            max_shorten=2,
            step_range=(5, 90),
        )
        summaries = storm.run(service.monitor)
        assert summaries, "the storm must actually reorg"
        assert any(version.is_revision for version in versions)

        log = service.index.alert_log
        numbers = [version.version for version in versions]
        assert numbers == sorted(numbers) and len(set(numbers)) == len(numbers)
        for version in versions:
            folded = fold_alerts(log[: version.last_seq + 1])
            assert folded == Counter(
                record.key for record in version.confirmed
            ), f"version {version.version} diverges from its alert prefix"

        batch = WashTradingPipeline(
            labels=world.labels, is_contract=world.is_contract, engine="columnar"
        ).run(build_dataset(world.node, world.marketplace_addresses))
        assert serving_parity_mismatches(service.query, batch) == []

    def test_every_version_matches_clamped_batch_build(self):
        """The acceptance criterion: per-version batch parity mid-storm."""
        world = fresh_world()
        service = ServeService.for_world(world, max_reorg_depth=64)
        rng = random.Random(31)
        tick = 0
        while service.monitor.processed_block < world.node.block_number:
            target = min(
                world.node.block_number,
                service.monitor.processed_block + rng.randint(15, 90),
            )
            version = service.advance(target)
            mismatches = serving_parity_mismatches(
                service.query,
                batch_at(world, service.monitor.processed_block),
                version=version,
            )
            assert mismatches == [], f"version {version.version}: {mismatches}"
            tick += 1
            if tick % 2 == 0:
                apply_random_reorg(
                    world.chain,
                    rng.randint(1, 12),
                    rng,
                    drop_probability=0.4,
                    delay_probability=0.25,
                    shorten=1 if tick % 4 == 0 else 0,
                )
        version = service.advance()  # settle the final revision
        assert (
            serving_parity_mismatches(
                service.query,
                batch_at(world, service.monitor.processed_block),
                version=version,
            )
            == []
        )
        assert version.confirmed_activity_count > 0

    def test_pinned_version_survives_a_revision(self):
        """Snapshot isolation: a revision never edits a served snapshot."""
        world = fresh_world()
        head = world.node.block_number
        service = ServeService.for_world(world, max_reorg_depth=head + 2)
        pinned = service.run(step_blocks=29)
        assert pinned.confirmed_activity_count > 0
        pinned_keys = [record.key for record in pinned.confirmed]

        apply_random_reorg(
            world.chain, 25, random.Random(3), drop_probability=0.9
        )
        revision = service.advance()
        assert revision.is_revision
        assert revision.version > pinned.version
        # The pinned snapshot still serves its pre-revision truth...
        assert [record.key for record in pinned.confirmed] == pinned_keys
        status = service.query.token_status(
            pinned.confirmed[0].nft, version=pinned
        )
        assert status.is_washed
        # ...while the current version reflects the retractions.
        assert revision.confirmed_activity_count <= len(pinned_keys)

    def test_retraction_counts_surface_in_token_status(self):
        """A token that lost an activity to a reorg reports the retraction."""
        world = fresh_world()
        head = world.node.block_number
        service = ServeService.for_world(world, max_reorg_depth=head + 2)
        service.run(step_blocks=29)
        from repro.chain.block import Block

        target = max(
            service.result().activities,
            key=lambda activity: max(
                t.block_number for t in activity.component.transfers
            ),
        )
        depth = head - max(
            t.block_number for t in target.component.transfers
        ) + 1
        empty = [
            Block(number=block.number, timestamp=block.timestamp)
            for block in world.chain.blocks[-depth:]
        ]
        orphaned = world.chain.reorg(depth, empty)
        service.advance()
        world.chain.reorg(depth, orphaned)  # the branch comes back
        version = service.advance()
        status = service.query.token_status(target.nft, version=version)
        # Re-confirmed after the flip, and the retraction is on record
        # (unless the token vanished entirely mid-flip, which resets it).
        assert status.is_washed
        assert status.retraction_count >= 0
        replayed = fold_alerts(service.index.alert_log)
        assert replayed == Counter(record.key for record in version.confirmed)
