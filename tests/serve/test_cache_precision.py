"""Invalidation precision of the aggregate cache, proven by counters.

The cache's contract is not just "correct answers" (the parity suites
pin that) but "*precise* invalidation": a tick may only evict answers
its dirty slice could actually have moved.  These tests read the
hit/miss/invalidation counters -- through ``CacheStats`` and through
the metrics registry the operators see -- to prove the negative space:
untouched scopes keep hitting, and in the sharded layout a tick whose
dirty slice misses a shard leaves that shard's entire cache warm.
"""

from __future__ import annotations

import random

from repro.obs.registry import MetricsRegistry
from repro.serve import ServeService
from repro.simulation.builder import build_default_world
from repro.simulation.config import SimulationConfig
from repro.simulation.reorg import apply_random_reorg

from tests.serve.storm import storm_tick


def _warm(query):
    """Touch every aggregate family once (fills the caches)."""
    query.funnel_stats()
    for contract in query.collections():
        query.collection_rollup(contract)
    for venue in query.venues():
        query.marketplace_rollup(venue)


class TestRegistryCounters:
    def test_hits_and_misses_surface_through_the_registry(self, tiny_world):
        registry = MetricsRegistry()
        service = ServeService.for_world(tiny_world, registry=registry)
        service.run()
        _warm(service.query)
        first = registry.snapshot()["counters"]
        assert first["serve_cache_misses_total"] > 0
        _warm(service.query)
        second = registry.snapshot()["counters"]
        # A fully warm re-walk is all hits: not one extra miss.
        assert second["serve_cache_misses_total"] == (
            first["serve_cache_misses_total"]
        )
        assert second["serve_cache_hits_total"] > first["serve_cache_hits_total"]

    def test_sharded_counters_are_labeled_per_shard(self, tiny_world):
        registry = MetricsRegistry()
        service = ServeService.for_world(
            tiny_world, registry=registry, shards=3
        )
        service.run()
        _warm(service.query)
        counters = registry.snapshot()["counters"]
        for shard in range(3):
            assert f'serve_cache_misses_total{{shard="{shard}"}}' in counters
        assert registry.snapshot()["gauges"]["serve_shards"] == 3

    def test_cache_stats_aggregates_across_shards(self, tiny_world):
        service = ServeService.for_world(tiny_world, shards=3)
        service.run()
        _warm(service.query)
        total = service.cache_stats()
        layers = [cache.stats for cache in service.index.caches]
        layers.append(service.index.router_cache.stats)
        assert total.misses == sum(stats.misses for stats in layers)
        assert total.hits == sum(stats.hits for stats in layers)
        assert ServeService.for_world(
            tiny_world, use_cache=False
        ).cache_stats() is None


class TestShardSlicePrecision:
    def test_ticks_only_invalidate_the_shards_they_touch(self):
        """Across a storm: every tick, the shards with an empty dirty
        slice must answer a fixed aggregate walk from cache alone.

        The walked key set is frozen after a few priming ticks (newly
        appearing collections/venues would otherwise add legitimate
        first-time misses that say nothing about invalidation).
        """
        world = build_default_world(SimulationConfig.tiny())
        service = ServeService.for_world(world, shards=4)
        rng = random.Random(5)
        for _ in range(4):
            storm_tick(world, service, rng)
        contracts = service.query.collections()
        venues = service.query.venues()
        assert contracts, "priming must have surfaced collections"

        def walk():
            service.query.funnel_stats()
            for contract in contracts:
                service.query.collection_rollup(contract)
            for venue in venues:
                service.query.marketplace_rollup(venue)

        clean_shards_seen = 0
        for tick in range(16):
            walk()
            before = [
                (cache.stats.hits, cache.stats.misses, cache.stats.invalidated)
                for cache in service.index.caches
            ]
            # Fine-grained strides keep per-tick dirty sets small -- the
            # regime the per-shard caches are built for -- with a reorg
            # every few ticks to keep retraction traffic in the mix.
            if service.monitor.processed_block >= world.node.block_number:
                apply_random_reorg(
                    world.chain, rng.randint(1, 6), rng, drop_probability=0.3
                )
            service.advance(
                min(
                    world.node.block_number,
                    service.monitor.processed_block + rng.randint(2, 8),
                )
            )
            version = service.query.version()
            walk()
            for shard_version, cache, (hits, misses, invalidated) in zip(
                version.shards, service.index.caches, before
            ):
                if shard_version.dirty_token_count == 0:
                    clean_shards_seen += 1
                    assert cache.stats.invalidated == invalidated, (
                        "a tick must not evict entries in a shard its "
                        "dirty slice never touched"
                    )
                    assert cache.stats.misses == misses, (
                        "an untouched shard must re-answer every "
                        "aggregate from cache"
                    )
                    if version.dirty_token_count > 0:
                        # Some other shard was dirtied, so the walk had
                        # to gather past the merged-result memo -- and
                        # this shard answered its partials from cache.
                        assert cache.stats.hits > hits
        assert clean_shards_seen > 0, (
            "the storm should have left some shard untouched at least once"
        )
