"""Tests for the ``python -m repro`` command-line entry point."""

from __future__ import annotations

import pytest

from repro.__main__ import PRESETS, build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.preset == "small"
        assert args.seed is None
        assert not args.quiet

    def test_presets_cover_all_configs(self):
        assert set(PRESETS) == {"tiny", "small", "default"}

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--preset", "galactic"])


class TestMain:
    def test_quiet_run_prints_summary(self, capsys):
        exit_code = main(["--preset", "tiny", "--quiet", "--seed", "5"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "confirmed wash trading activities" in captured.out
        assert "Table I" not in captured.out

    def test_full_run_writes_report_file(self, tmp_path, capsys):
        output = tmp_path / "report.txt"
        exit_code = main(["--preset", "tiny", "--seed", "5", "--output", str(output)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert output.exists()
        assert "Table II" in output.read_text()
        assert "Table II" in captured.out
