"""Tests for the ``python -m repro`` command-line entry point."""

from __future__ import annotations

import pytest

from repro.__main__ import (
    PRESETS,
    build_monitor_parser,
    build_parser,
    build_query_parser,
    build_serve_parser,
    main,
    parse_endpoint,
)


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.preset == "small"
        assert args.seed is None
        assert not args.quiet

    def test_presets_cover_all_configs(self):
        assert set(PRESETS) == {"tiny", "small", "default"}

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--preset", "galactic"])

    def test_monitor_parser_defaults(self):
        args = build_monitor_parser().parse_args([])
        assert args.preset == "small"
        assert args.step_blocks == 25
        assert args.watch == []
        assert not args.quiet

    def test_serve_parser_listen_endpoint(self):
        args = build_serve_parser().parse_args([])
        assert args.listen is None
        args = build_serve_parser().parse_args(["--listen", "0.0.0.0:7654"])
        assert args.listen == ("0.0.0.0", 7654)
        args = build_serve_parser().parse_args(["--listen", ":0"])
        assert args.listen == ("127.0.0.1", 0)

    def test_endpoint_parsing_rejects_garbage(self):
        import argparse

        for bogus in ("nocolon", "host:port", "host:70000", "host:-1"):
            with pytest.raises(argparse.ArgumentTypeError):
                parse_endpoint(bogus)

    def test_query_parser_requires_connect_and_verb(self):
        args = build_query_parser().parse_args(
            ["--connect", "localhost:9", "token-status", "0xabc", "5"]
        )
        assert args.connect == ("localhost", 9)
        assert args.verb == "token-status"
        assert args.contract == "0xabc" and args.token_id == 5
        with pytest.raises(SystemExit):
            build_query_parser().parse_args(["ping"])  # --connect missing
        with pytest.raises(SystemExit):
            build_query_parser().parse_args(["--connect", "h:1"])  # no verb


class TestMain:
    def test_quiet_run_prints_summary(self, capsys):
        exit_code = main(["--preset", "tiny", "--quiet", "--seed", "5"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "confirmed wash trading activities" in captured.out
        assert "Table I" not in captured.out

    def test_full_run_writes_report_file(self, tmp_path, capsys):
        output = tmp_path / "report.txt"
        exit_code = main(["--preset", "tiny", "--seed", "5", "--output", str(output)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert output.exists()
        assert "Table II" in output.read_text()
        assert "Table II" in captured.out
        # Without --quiet the trailing summary still prints.
        assert "confirmed wash trading activities" in captured.out

    def test_run_subcommand_is_equivalent(self, capsys):
        exit_code = main(["run", "--preset", "tiny", "--quiet", "--seed", "5"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "confirmed wash trading activities" in captured.out

    def test_quiet_with_output_writes_file_only(self, tmp_path, capsys):
        output = tmp_path / "report.txt"
        exit_code = main(
            ["--preset", "tiny", "--quiet", "--seed", "5", "--output", str(output)]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Table II" in output.read_text()
        assert captured.out == ""


class TestMonitorCommand:
    def test_monitor_prints_alerts_and_summary(self, capsys):
        exit_code = main(["monitor", "--preset", "tiny", "--step-blocks", "50"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "FLAGGED" in captured.out
        assert "confirmed activities" in captured.out
        assert "blocks/s" in captured.out

    def test_monitor_quiet_prints_only_summary(self, capsys):
        exit_code = main(
            ["monitor", "--preset", "tiny", "--step-blocks", "100", "--quiet"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "FLAGGED" not in captured.out
        assert "confirmed activities" in captured.out

    def test_monitor_rejects_unknown_preset(self):
        with pytest.raises(SystemExit):
            main(["monitor", "--preset", "galactic"])
