"""Tests for the ``python -m repro`` command-line entry point."""

from __future__ import annotations

import pytest

from repro.__main__ import (
    PRESETS,
    build_monitor_parser,
    build_parser,
    build_query_parser,
    build_scenario_parser,
    build_serve_parser,
    main,
    parse_endpoint,
)


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.preset == "small"
        assert args.seed is None
        assert not args.quiet

    def test_presets_cover_all_configs(self):
        assert set(PRESETS) == {"tiny", "small", "default"}

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--preset", "galactic"])

    def test_monitor_parser_defaults(self):
        args = build_monitor_parser().parse_args([])
        assert args.preset == "small"
        assert args.step_blocks == 25
        assert args.watch == []
        assert not args.quiet

    def test_serve_parser_listen_endpoint(self):
        args = build_serve_parser().parse_args([])
        assert args.listen is None
        args = build_serve_parser().parse_args(["--listen", "0.0.0.0:7654"])
        assert args.listen == ("0.0.0.0", 7654)
        args = build_serve_parser().parse_args(["--listen", ":0"])
        assert args.listen == ("127.0.0.1", 0)

    def test_endpoint_parsing_rejects_garbage(self):
        import argparse

        for bogus in ("nocolon", "host:port", "host:70000", "host:-1"):
            with pytest.raises(argparse.ArgumentTypeError):
                parse_endpoint(bogus)

    def test_query_parser_requires_connect_and_verb(self):
        args = build_query_parser().parse_args(
            ["--connect", "localhost:9", "token-status", "0xabc", "5"]
        )
        assert args.connect == ("localhost", 9)
        assert args.verb == "token-status"
        assert args.contract == "0xabc" and args.token_id == 5
        with pytest.raises(SystemExit):
            build_query_parser().parse_args(["ping"])  # --connect missing
        with pytest.raises(SystemExit):
            build_query_parser().parse_args(["--connect", "h:1"])  # no verb

    def test_scenario_parser_defaults(self):
        args = build_scenario_parser().parse_args(["reorg-storm-rush"])
        assert args.name == "reorg-storm-rush"
        assert args.speed is None and args.seed is None
        assert args.shards == 1 and args.workers == 0
        assert not args.no_wire and not args.no_verify and not args.no_slo
        assert not args.list_scenarios and not args.as_json and not args.quiet

    def test_scenario_parser_flags(self):
        args = build_scenario_parser().parse_args(
            [
                "day-in-the-life",
                "--speed", "500000", "--seed", "9",
                "--shards", "4", "--workers", "2",
                "--no-wire", "--no-slo", "--json", "--quiet",
            ]
        )
        assert args.speed == 500000.0 and args.seed == 9
        assert args.shards == 4 and args.workers == 2
        assert args.no_wire and args.no_slo and args.as_json and args.quiet


class TestScenarioCommand:
    def test_list_prints_catalogue(self, capsys):
        from repro.simulation.scenarios import scenario_names

        exit_code = main(["scenario", "--list"])
        captured = capsys.readouterr()
        assert exit_code == 0
        for name in scenario_names():
            assert name in captured.out

    def test_unknown_scenario_exits_2(self, capsys):
        exit_code = main(["scenario", "no-such-scenario"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "registered:" in captured.err

    def test_missing_name_is_a_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["scenario"])
        assert excinfo.value.code == 2

    def test_quiet_run_passes_and_prints_report(self, capsys):
        exit_code = main(
            ["scenario", "fee-regime-shift", "--quiet", "--no-wire"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "scenario fee-regime-shift: PASS" in captured.out
        assert "[PASS]" in captured.out

    def test_json_run_emits_one_object(self, capsys):
        import json as json_module

        exit_code = main(
            ["scenario", "fee-regime-shift", "--json", "--no-wire", "--quiet"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        payload = json_module.loads(captured.out)
        assert payload["scenario"] == "fee-regime-shift"
        assert payload["ok"] is True


class TestMain:
    def test_quiet_run_prints_summary(self, capsys):
        exit_code = main(["--preset", "tiny", "--quiet", "--seed", "5"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "confirmed wash trading activities" in captured.out
        assert "Table I" not in captured.out

    def test_full_run_writes_report_file(self, tmp_path, capsys):
        output = tmp_path / "report.txt"
        exit_code = main(["--preset", "tiny", "--seed", "5", "--output", str(output)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert output.exists()
        assert "Table II" in output.read_text()
        assert "Table II" in captured.out
        # Without --quiet the trailing summary still prints.
        assert "confirmed wash trading activities" in captured.out

    def test_run_subcommand_is_equivalent(self, capsys):
        exit_code = main(["run", "--preset", "tiny", "--quiet", "--seed", "5"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "confirmed wash trading activities" in captured.out

    def test_quiet_with_output_writes_file_only(self, tmp_path, capsys):
        output = tmp_path / "report.txt"
        exit_code = main(
            ["--preset", "tiny", "--quiet", "--seed", "5", "--output", str(output)]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Table II" in output.read_text()
        assert captured.out == ""


class TestMonitorCommand:
    def test_monitor_prints_alerts_and_summary(self, capsys):
        exit_code = main(["monitor", "--preset", "tiny", "--step-blocks", "50"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "FLAGGED" in captured.out
        assert "confirmed activities" in captured.out
        assert "blocks/s" in captured.out

    def test_monitor_quiet_prints_only_summary(self, capsys):
        exit_code = main(
            ["monitor", "--preset", "tiny", "--step-blocks", "100", "--quiet"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "FLAGGED" not in captured.out
        assert "confirmed activities" in captured.out

    def test_monitor_rejects_unknown_preset(self):
        with pytest.raises(SystemExit):
            main(["monitor", "--preset", "galactic"])
