"""Registry unit tests: exactness under threads, families, exposition.

The introspection layer is only trustworthy if the numbers it reports
are *exact* where exactness is promised (counter totals, histogram
count/sum) and honestly estimated where it is not (reservoir
percentiles).  These tests pin both, plus the name/kind/label conflict
rules, the collector merge, the null tier's no-op contract, and the
Prometheus exposition round trip.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.obs import (
    NULL_REGISTRY,
    DEFAULT_RESERVOIR_SIZE,
    MetricsRegistry,
    NullRegistry,
    parse_prometheus,
    render_prometheus,
)


class TestCounter:
    def test_concurrent_increments_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("work_total")
        threads, per_thread = 8, 5000
        barrier = threading.Barrier(threads)

        def hammer():
            barrier.wait()
            for _ in range(per_thread):
                counter.inc()

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert counter.value == threads * per_thread

    def test_increment_by_amount(self):
        counter = MetricsRegistry().counter("batch_total")
        counter.inc(41)
        counter.inc()
        assert counter.value == 42

    def test_counters_only_go_up(self):
        counter = MetricsRegistry().counter("monotone_total")
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("level")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13

    def test_concurrent_inc_dec_balance_out(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("connections")
        threads, per_thread = 6, 3000

        def churn():
            for _ in range(per_thread):
                gauge.inc()
                gauge.dec()

        workers = [threading.Thread(target=churn) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert gauge.value == 0


class TestHistogram:
    def test_count_and_sum_are_exact_past_the_reservoir(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency_seconds")
        observations = DEFAULT_RESERVOIR_SIZE * 4
        for value in range(observations):
            histogram.observe(float(value))
        snapshot = histogram.snapshot()
        assert snapshot.count == observations
        assert snapshot.sum == float(sum(range(observations)))
        assert snapshot.min == 0.0
        assert snapshot.max == float(observations - 1)

    def test_percentiles_exact_while_reservoir_holds_everything(self):
        histogram = MetricsRegistry().histogram("small")
        for value in range(101):  # 0..100, well under the reservoir
            histogram.observe(float(value))
        assert histogram.percentile(0.5) == 50.0
        assert histogram.percentile(0.0) == 0.0
        assert histogram.percentile(1.0) == 100.0

    def test_percentiles_estimated_after_overflow(self):
        histogram = MetricsRegistry().histogram("big")
        values = list(range(10_000))
        random.Random(7).shuffle(values)
        for value in values:
            histogram.observe(float(value))
        snapshot = histogram.snapshot()
        # A 512-slot uniform sample of 0..9999: the estimates must land
        # in generous but meaningful bands around the true quantiles.
        assert 3500 <= snapshot.p50 <= 6500
        assert 8800 <= snapshot.p95 <= 10_000
        assert snapshot.p95 <= snapshot.p99 <= 10_000

    def test_quantile_bounds_checked(self):
        histogram = MetricsRegistry().histogram("bounds")
        with pytest.raises(ValueError):
            histogram.percentile(1.5)

    def test_empty_histogram_snapshots_to_zeroes(self):
        snapshot = MetricsRegistry().histogram("idle").snapshot()
        assert snapshot.count == 0
        assert snapshot.sum == 0.0
        assert snapshot.p99 == 0.0
        assert snapshot.mean == 0.0

    def test_observe_never_touches_global_random_state(self):
        """The parity guarantee: reservoir sampling is privately seeded."""
        random.seed(1234)
        expected = [random.random() for _ in range(5)]
        random.seed(1234)
        histogram = MetricsRegistry().histogram("sampler")
        for value in range(DEFAULT_RESERVOIR_SIZE * 3):
            histogram.observe(float(value))
        assert [random.random() for _ in range(5)] == expected

    def test_concurrent_observations_keep_exact_totals(self):
        histogram = MetricsRegistry().histogram("threaded")
        threads, per_thread = 8, 2000

        def observe():
            for _ in range(per_thread):
                histogram.observe(1.0)

        workers = [threading.Thread(target=observe) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert histogram.count == threads * per_thread
        assert histogram.sum == float(threads * per_thread)


class TestFamilies:
    def test_children_are_get_or_create(self):
        registry = MetricsRegistry()
        family = registry.counter("requests_total", labels=("verb",))
        assert family.labels(verb="ping") is family.labels("ping")
        assert family.labels(verb="ping") is not family.labels(verb="stats")

    def test_snapshot_renders_labeled_names(self):
        registry = MetricsRegistry()
        family = registry.counter("requests_total", labels=("verb",))
        family.labels(verb="ping").inc(3)
        counters = registry.snapshot()["counters"]
        assert counters['requests_total{verb="ping"}'] == 3

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        family = registry.counter("weird_total", labels=("tag",))
        family.labels(tag='a"b\n').inc()
        (name,) = registry.snapshot()["counters"]
        assert name == 'weird_total{tag="a\\"b\\n"}'

    def test_wrong_label_arity_rejected(self):
        family = MetricsRegistry().counter("multi_total", labels=("a", "b"))
        with pytest.raises(ValueError):
            family.labels("only-one")
        with pytest.raises(ValueError):
            family.labels(a="x")  # missing b

    def test_labeled_histograms_work(self):
        registry = MetricsRegistry()
        family = registry.histogram("stage_seconds", labels=("stage",))
        family.labels(stage="refine").observe(0.5)
        histograms = registry.snapshot()["histograms"]
        assert histograms['stage_seconds{stage="refine"}']["count"] == 1


class TestRegistryRules:
    def test_get_or_create_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x_total") is registry.counter("x_total")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("taken")
        with pytest.raises(ValueError):
            registry.gauge("taken")

    def test_label_set_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("labeled_total", labels=("verb",))
        with pytest.raises(ValueError):
            registry.counter("labeled_total", labels=("kind",))
        with pytest.raises(ValueError):
            registry.counter("labeled_total")

    def test_collectors_merge_into_snapshot(self):
        registry = MetricsRegistry()
        registry.register_collector(
            lambda: {"counters": {"cache_hits_total": 7}, "gauges": {"entries": 2}}
        )
        snapshot = registry.snapshot()
        assert snapshot["counters"]["cache_hits_total"] == 7
        assert snapshot["gauges"]["entries"] == 2

    def test_broken_collector_is_skipped(self):
        registry = MetricsRegistry()

        def broken():
            raise RuntimeError("scrape me not")

        registry.register_collector(broken)
        registry.register_collector(lambda: {"counters": {"ok_total": 1}})
        assert registry.snapshot()["counters"] == {"ok_total": 1}


class TestNullRegistry:
    def test_singleton_is_disabled(self):
        assert NULL_REGISTRY.enabled is False
        assert MetricsRegistry().enabled is True

    def test_everything_is_a_noop(self):
        registry = NullRegistry()
        counter = registry.counter("ignored_total")
        counter.inc(100)
        assert counter.value == 0
        gauge = registry.gauge("ignored")
        gauge.set(5)
        gauge.inc()
        assert gauge.value == 0
        histogram = registry.histogram("ignored_seconds")
        histogram.observe(1.0)
        assert histogram.snapshot().count == 0
        assert histogram.percentile(0.99) == 0.0

    def test_span_is_reusable_and_annotatable(self):
        registry = NullRegistry()
        with registry.span("tick", depth=3) as span:
            span.annotate(alerts=1)
        with registry.span("tick"):
            pass
        assert registry.recent_spans() == []

    def test_snapshot_is_empty(self):
        registry = NullRegistry()
        registry.counter("ignored_total", labels=("verb",)).labels(verb="x").inc()
        registry.register_collector(lambda: {"counters": {"nope": 1}})
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestExposition:
    def build(self):
        registry = MetricsRegistry()
        registry.counter("blocks_total", "Blocks ingested.").inc(12)
        registry.gauge("tracked", "Tracked tokens.").set(3.5)
        requests = registry.counter("requests_total", labels=("verb",))
        requests.labels(verb="ping").inc(2)
        latency = registry.histogram("tick_seconds", "Tick latency.")
        for value in (0.1, 0.2, 0.3, 0.4):
            latency.observe(value)
        return registry

    def test_render_parse_round_trip(self):
        registry = self.build()
        samples = parse_prometheus(render_prometheus(registry))
        assert samples["blocks_total"] == 12
        assert samples["tracked"] == 3.5
        assert samples['requests_total{verb="ping"}'] == 2
        assert samples["tick_seconds_count"] == 4
        assert samples["tick_seconds_sum"] == pytest.approx(1.0)
        assert samples['tick_seconds{quantile="0.5"}'] == pytest.approx(0.3)

    def test_help_and_type_lines_present(self):
        text = render_prometheus(self.build())
        assert "# HELP blocks_total Blocks ingested." in text
        assert "# TYPE blocks_total counter" in text
        assert "# TYPE tracked gauge" in text
        assert "# TYPE tick_seconds summary" in text

    def test_labeled_histogram_suffixes_keep_labels(self):
        registry = MetricsRegistry()
        family = registry.histogram("span_seconds", labels=("span",))
        family.labels(span="refine").observe(0.25)
        samples = parse_prometheus(render_prometheus(registry))
        assert samples['span_seconds_count{span="refine"}'] == 1
        assert samples['span_seconds{span="refine",quantile="0.95"}'] == 0.25

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is not a sample\n")

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
        assert parse_prometheus("") == {}
