"""The ingest-to-alert latency ledger and the SLO engine.

Unit batteries for ISSUE 9's latency/SLO layers: the ledger's
stage-edge accounting (first-wins marks, terminal re-observation,
opening-mark restriction, bounded retention) and the engine's rolling
windows, error budgets, edge-triggered breaches and gauge surface --
plus the end-to-end forced breach through a real monitor, asserting
the typed SLO_BREACH alert rides the ordinary alert bus.
"""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry
from repro.obs.latency import MARKS, STAGES, AlertLatencyLedger
from repro.obs.slo import (
    SLOEngine,
    SLOObjective,
    latency_objective,
    wire_error_objective,
)


def stage_counts(registry):
    histograms = registry.snapshot()["histograms"]
    return {
        stage: histograms.get(f'alert_latency_seconds{{stage="{stage}"}}', {}).get(
            "count", 0
        )
        for stage in STAGES
    }


class TestLatencyLedger:
    def test_full_path_observes_every_stage(self):
        registry = MetricsRegistry()
        ledger = AlertLatencyLedger(registry)
        times = {mark: float(index) for index, mark in enumerate(MARKS)}
        for mark in MARKS:
            ledger.mark("t000001-abc", mark, at=times[mark])
        histograms = registry.snapshot()["histograms"]
        for stage in STAGES:
            stats = histograms[f'alert_latency_seconds{{stage="{stage}"}}']
            assert stats["count"] == 1, stage
        # total spans block_seen..socket_write = 4 mark intervals.
        total = histograms['alert_latency_seconds{stage="total"}']
        assert total["sum"] == pytest.approx(4.0)
        schedule = histograms['alert_latency_seconds{stage="schedule"}']
        assert schedule["sum"] == pytest.approx(1.0)

    def test_stage_children_precreated_for_expositions(self):
        registry = MetricsRegistry()
        AlertLatencyLedger(registry)
        assert stage_counts(registry) == {stage: 0 for stage in STAGES}

    def test_non_terminal_marks_are_first_wins(self):
        registry = MetricsRegistry()
        ledger = AlertLatencyLedger(registry)
        ledger.mark("t", "block_seen", at=0.0)
        ledger.mark("t", "tick_start", at=1.0)
        ledger.mark("t", "tick_start", at=50.0)  # must not re-observe
        assert stage_counts(registry)["schedule"] == 1
        assert ledger.marks("t")["tick_start"] == 1.0

    def test_socket_write_reobserves_per_frame(self):
        """One delivery observation per alert frame per subscriber."""
        registry = MetricsRegistry()
        ledger = AlertLatencyLedger(registry)
        ledger.mark("t", "block_seen", at=0.0)
        ledger.mark("t", "fanout_enqueue", at=1.0)
        ledger.mark("t", "socket_write", at=2.0)
        ledger.mark("t", "socket_write", at=3.0)
        ledger.mark("t", "socket_write", at=4.0)
        counts = stage_counts(registry)
        assert counts["deliver"] == 3
        assert counts["total"] == 3
        # The stored timestamp stays the first one.
        assert ledger.marks("t")["socket_write"] == 2.0

    def test_late_marks_for_unknown_traces_are_dropped(self):
        """A subscriber replaying ancient alerts must not open entries."""
        registry = MetricsRegistry()
        ledger = AlertLatencyLedger(registry)
        ledger.mark("ancient", "publish")
        ledger.mark("ancient", "fanout_enqueue")
        ledger.mark("ancient", "socket_write")
        assert ledger.pending() == 0
        assert sum(stage_counts(registry).values()) == 0

    def test_monitor_only_run_lands_no_stage(self):
        registry = MetricsRegistry()
        ledger = AlertLatencyLedger(registry)
        ledger.mark("t", "tick_start")
        assert sum(stage_counts(registry).values()) == 0
        assert ledger.pending() == 1

    def test_bounded_retention_evicts_oldest(self):
        registry = MetricsRegistry()
        ledger = AlertLatencyLedger(registry, capacity=3)
        for index in range(6):
            ledger.mark(f"t{index}", "tick_start", at=float(index))
        assert ledger.pending() == 3
        assert ledger.marks("t0") == {}
        assert ledger.marks("t5") == {"tick_start": 5.0}

    def test_empty_trace_and_unknown_mark_are_ignored(self):
        registry = MetricsRegistry()
        ledger = AlertLatencyLedger(registry)
        ledger.mark("", "tick_start")
        ledger.mark("t", "not-a-mark")
        assert ledger.pending() == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            AlertLatencyLedger(MetricsRegistry(), capacity=0)

    def test_null_registry_ledger_is_inert(self):
        from repro.obs import NULL_REGISTRY

        ledger = NULL_REGISTRY.latency
        ledger.mark("t", "tick_start")
        assert ledger.marks("t") == {}
        assert ledger.pending() == 0


class TestObjectives:
    def test_latency_objective_defaults(self):
        objective = latency_objective(0.25)
        assert objective.name == "alert-latency-total-p95"
        assert objective.kind == "latency"
        assert objective.stage == "total"
        assert objective.threshold == 0.25

    def test_wire_error_objective_defaults(self):
        objective = wire_error_objective(0.01)
        assert objective.name == "wire-error-rate"
        assert objective.kind == "error_rate"

    def test_validation(self):
        with pytest.raises(ValueError):
            SLOObjective(name="x", description="", kind="vibes", threshold=1.0)
        with pytest.raises(ValueError):
            latency_objective(0.1, window=0)
        with pytest.raises(ValueError):
            latency_objective(0.1, budget=0.0)
        with pytest.raises(ValueError):
            latency_objective(0.1, quantile=1.5)
        with pytest.raises(ValueError):
            SLOEngine(
                MetricsRegistry(),
                [latency_objective(0.1), latency_objective(0.2)],
            )


class TestSLOEngine:
    def _latency_engine(self, threshold, window=4, budget=0.25, stage="detect"):
        registry = MetricsRegistry()
        ledger = AlertLatencyLedger(registry)
        engine = SLOEngine(
            registry,
            [
                latency_objective(
                    threshold, stage=stage, window=window, budget=budget
                )
            ],
        )
        return registry, ledger, engine

    def test_no_data_means_no_evaluation(self):
        registry, _, engine = self._latency_engine(0.1)
        assert engine.evaluate() == []
        state = engine.state()["alert-latency-detect-p95"]
        assert state["window"] == 0
        assert state["healthy"] is True
        gauges = registry.snapshot()["gauges"]
        assert gauges['slo_healthy{slo="alert-latency-detect-p95"}'] == 1

    def test_breach_is_edge_triggered_and_rearms(self):
        # window=4, budget=0.25 -> one bad evaluation exhausts the budget.
        registry, ledger, engine = self._latency_engine(0.001)
        ledger.mark("t1", "tick_start", at=0.0)
        ledger.mark("t1", "publish", at=1.0)  # 1s detect latency: bad
        (breach,) = engine.evaluate()
        assert breach.objective.name == "alert-latency-detect-p95"
        assert breach.budget_used >= 1.0
        assert breach.burn_rate >= 1.0
        assert "threshold" in breach.detail

        gauges = registry.snapshot()["gauges"]
        assert gauges['slo_healthy{slo="alert-latency-detect-p95"}'] == 0
        assert gauges['slo_budget_used{slo="alert-latency-detect-p95"}'] >= 1.0
        assert gauges['slo_burn_rate{slo="alert-latency-detect-p95"}'] >= 1.0

        # Still breached: no second alert for the same excursion.
        assert engine.evaluate() == []

        # Flood the reservoir with fast ticks until p95 drops below the
        # threshold, then evaluate the window clean (the percentile is
        # over the histogram's reservoir, so one slow outlier must be
        # diluted, not merely followed).
        for index in range(40):
            trace = f"good{index}"
            ledger.mark(trace, "tick_start", at=0.0)
            ledger.mark(trace, "publish", at=0.0)
        for _ in range(4):
            engine.evaluate()
        state = engine.state()["alert-latency-detect-p95"]
        assert state["healthy"] is True
        assert state["breached"] is False
        gauges = registry.snapshot()["gauges"]
        assert gauges['slo_healthy{slo="alert-latency-detect-p95"}'] == 1

        # ...after which a fresh excursion alerts again (re-armed).
        for index in range(200):
            trace = f"slow{index}"
            ledger.mark(trace, "tick_start", at=0.0)
            ledger.mark(trace, "publish", at=2.0)
        assert len(engine.evaluate()) == 1

    def test_error_rate_uses_deltas_between_evaluations(self):
        registry = MetricsRegistry()
        requests = registry.counter(
            "wire_requests_total", "requests", labels=("verb",)
        )
        errors = registry.counter(
            "wire_request_errors_total", "request errors"
        )
        engine = SLOEngine(
            registry, [wire_error_objective(0.5, window=4, budget=0.25)]
        )

        # Interval 1: 4 requests, 0 errors -> good.
        requests.labels(verb="ping").inc(4)
        assert engine.evaluate() == []

        # Interval 2: no new requests -> skipped, window holds still.
        assert engine.evaluate() == []
        assert engine.state()["wire-error-rate"]["window"] == 1

        # Interval 3: 2 new requests, 2 new errors -> rate 1.0 -> breach.
        requests.labels(verb="list").inc(2)
        errors.inc(2)
        (breach,) = engine.evaluate()
        assert breach.value == pytest.approx(1.0)
        gauges = registry.snapshot()["gauges"]
        assert gauges['slo_budget_used{slo="wire-error-rate"}'] >= 1.0


class TestForcedBreachThroughMonitor:
    def test_breach_emits_typed_alert_on_the_bus(self, tiny_world):
        """End to end: an exhausted budget becomes an SLO_BREACH alert
        with gapless seq, the tick's trace, and moving budget gauges."""
        from repro.serve import ServeService
        from repro.stream import AlertKind, StreamingMonitor

        registry = MetricsRegistry()
        monitor = StreamingMonitor.for_world(tiny_world, registry=registry)
        service = ServeService(monitor, registry=registry)
        # detect-stage data exists on every tick even without a wire
        # subscriber; a sub-nanosecond threshold forces the first
        # evaluated tick to blow the one-evaluation budget.
        engine = SLOEngine(
            registry,
            [latency_objective(1e-9, stage="detect", window=2, budget=0.5)],
        )
        service.attach_slo(engine)
        try:
            for _ in range(3):
                service.advance(
                    min(
                        tiny_world.node.block_number,
                        monitor.processed_block + 25,
                    )
                )
        finally:
            service.shutdown()

        breaches = [
            alert
            for alert in monitor.alerts
            if alert.kind is AlertKind.SLO_BREACH
        ]
        assert breaches, "budget exhaustion never surfaced on the alert bus"
        breach = breaches[0]
        assert breach.slo == "alert-latency-detect-p95"
        assert breach.budget_used >= 1.0
        assert breach.detail
        assert breach.trace  # carried like any other alert
        # Exactly one alert per excursion, and seqs stay gapless.
        assert len(breaches) == 1
        assert [alert.seq for alert in monitor.alerts] == list(
            range(len(monitor.alerts))
        )
        gauges = registry.snapshot()["gauges"]
        assert gauges['slo_healthy{slo="alert-latency-detect-p95"}'] == 0
        assert gauges['slo_budget_used{slo="alert-latency-detect-p95"}'] >= 1.0
