"""Atomic metrics exposition and the reporter's final-flush contract.

The ISSUE 9 satellites: ``--metrics-out`` rewrites must be atomic (a
scraper, or a writer killed mid-write, can never observe a torn file),
and :class:`PeriodicReporter` must run its final flush exactly once no
matter how many racing stop() calls land -- a SIGINT handler and a
finally block both calling stop() used to double-report.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time

from repro.obs import (
    MetricsRegistry,
    PeriodicReporter,
    parse_prometheus,
    write_prometheus,
)

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

#: A child that rewrites the exposition file as fast as it can -- the
#: victim for the kill-mid-write battery.
_WRITER_PROGRAM = """
import sys
from repro.obs import MetricsRegistry, write_prometheus

registry = MetricsRegistry()
for index in range(300):
    registry.counter(f"churn_{index}_total", "kill-test filler").inc(index)
    registry.gauge(f"level_{index}", "kill-test filler").set(index * 0.5)
path = sys.argv[1]
write_prometheus(registry, path)
print("ready", flush=True)
while True:
    write_prometheus(registry, path)
"""


class TestAtomicExposition:
    def test_write_replaces_not_truncates(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("events_total", "events").inc(3)
        path = tmp_path / "metrics.prom"
        write_prometheus(registry, str(path))
        first = path.read_text()
        assert parse_prometheus(first)["events_total"] == 3.0
        registry.counter("events_total", "events").inc()
        write_prometheus(registry, str(path))
        assert parse_prometheus(path.read_text())["events_total"] == 4.0
        # No stale tmp file left behind.
        assert not (tmp_path / "metrics.prom.tmp").exists()

    def test_killed_mid_write_never_tears_the_file(self, tmp_path):
        """SIGKILL the writer at arbitrary points; the exposition at the
        published path must always parse completely."""
        path = tmp_path / "metrics.prom"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(REPO_SRC) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        for round_index in range(4):
            proc = subprocess.Popen(
                [sys.executable, "-c", _WRITER_PROGRAM, str(path)],
                stdout=subprocess.PIPE,
                text=True,
                env=env,
            )
            try:
                assert proc.stdout.readline().strip() == "ready"
                time.sleep(0.02 * round_index)
                proc.send_signal(signal.SIGKILL)
            finally:
                proc.wait(timeout=30)
            samples = parse_prometheus(path.read_text())
            # Complete: every family made it, none truncated halfway.
            assert samples["churn_0_total"] == 0.0
            assert samples["churn_299_total"] == 299.0
            assert samples["level_299"] == 149.5


class TestReporterFinalFlush:
    def test_concurrent_stops_flush_exactly_once(self, tmp_path):
        """Eight racing stop() calls (the SIGINT-vs-finally shape) must
        produce exactly one final report."""
        registry = MetricsRegistry()
        registry.counter("events_total", "events").inc()
        emitted = []
        path = tmp_path / "metrics.prom"
        # A huge interval: the timer never fires, so every line seen is
        # a final flush.
        reporter = PeriodicReporter(
            registry, interval=3600.0, emit=emitted.append,
            metrics_out=str(path),
        ).start()
        barrier = threading.Barrier(8)

        def racer():
            barrier.wait()
            reporter.stop(final_report=True)

        threads = [threading.Thread(target=racer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(emitted) == 1
        assert parse_prometheus(path.read_text())["events_total"] == 1.0
        # Later stops (idempotent shutdown paths) stay silent.
        reporter.stop(final_report=True)
        assert len(emitted) == 1

    def test_stop_without_final_report_skips_the_flush(self):
        emitted = []
        reporter = PeriodicReporter(
            MetricsRegistry(), interval=3600.0, emit=emitted.append
        ).start()
        reporter.stop(final_report=False)
        assert emitted == []
        # The latch is armed only by a final-report stop: a later one
        # still gets its single flush.
        reporter.stop(final_report=True)
        assert len(emitted) == 1

    def test_mid_fire_stop_waits_out_the_inflight_report(self):
        """stop() during a slow in-flight periodic report neither kills
        it nor double-reports."""
        fired = threading.Event()
        release = threading.Event()
        emitted = []

        def slow_emit(line):
            emitted.append(line)
            fired.set()
            release.wait(timeout=10.0)

        reporter = PeriodicReporter(
            MetricsRegistry(), interval=0.01, emit=slow_emit
        ).start()
        assert fired.wait(timeout=10.0)
        stopper = threading.Thread(
            target=reporter.stop, kwargs={"final_report": True}
        )
        stopper.start()
        release.set()
        stopper.join(timeout=10.0)
        assert not stopper.is_alive()
        # The in-flight periodic report plus exactly one final flush;
        # the 10ms timer may squeeze in extra periodic lines before the
        # stop flag lands, so assert the flush happened and the
        # reporter is quiescent rather than an exact count.
        settled = len(emitted)
        assert settled >= 2
        time.sleep(0.1)
        assert len(emitted) == settled
