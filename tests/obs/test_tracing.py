"""Span tracing: the ring, the sinks, and the span_seconds family."""

from __future__ import annotations

import json

import pytest

from repro.obs import JsonLinesSink, MetricsRegistry
from repro.obs.bounded import DEFAULT_ERROR_RETENTION, BoundedLog
from repro.obs.tracing import DEFAULT_RING_SIZE


class TestSpans:
    def test_span_records_name_attrs_and_duration(self):
        registry = MetricsRegistry()
        with registry.span("refine", tokens=42):
            pass
        (record,) = registry.recent_spans()
        assert record.name == "refine"
        assert record.attrs == {"tokens": 42}
        assert record.duration >= 0.0
        assert record.error is None

    def test_annotate_attaches_mid_span_attributes(self):
        registry = MetricsRegistry()
        with registry.span("ingest", blocks=5) as span:
            span.annotate(transfers=17)
        (record,) = registry.recent_spans()
        assert record.attrs == {"blocks": 5, "transfers": 17}

    def test_exception_is_recorded_and_propagated(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.span("detect"):
                raise RuntimeError("boom")
        (record,) = registry.recent_spans()
        assert record.error == "RuntimeError"
        assert record.as_dict()["error"] == "RuntimeError"

    def test_spans_nest(self):
        registry = MetricsRegistry()
        with registry.span("tick"):
            with registry.span("refine"):
                pass
        assert [r.name for r in registry.recent_spans()] == ["refine", "tick"]

    def test_ring_is_bounded(self):
        registry = MetricsRegistry()
        for index in range(DEFAULT_RING_SIZE + 50):
            with registry.span("tick", n=index):
                pass
        recent = registry.recent_spans()
        assert len(recent) == DEFAULT_RING_SIZE
        assert recent[-1].attrs == {"n": DEFAULT_RING_SIZE + 49}
        assert recent[0].attrs == {"n": 50}

    def test_span_seconds_family_is_populated(self):
        registry = MetricsRegistry()
        with registry.span("publish"):
            pass
        with registry.span("publish"):
            pass
        histograms = registry.snapshot()["histograms"]
        assert histograms['span_seconds{span="publish"}']["count"] == 2

    def test_as_dict_shape(self):
        registry = MetricsRegistry()
        with registry.span("fanout", alerts=3):
            pass
        (record,) = registry.recent_spans()
        payload = record.as_dict()
        assert payload["span"] == "fanout"
        assert payload["attrs"] == {"alerts": 3}
        assert payload["duration_s"] >= 0.0
        assert "ts" in payload


class TestSinks:
    def test_sinks_receive_every_record(self):
        registry = MetricsRegistry()
        seen = []
        registry.add_span_sink(seen.append)
        with registry.span("tick"):
            pass
        assert [record.name for record in seen] == ["tick"]

    def test_broken_sink_never_fails_the_operation(self):
        registry = MetricsRegistry()

        def broken(record):
            raise OSError("disk full")

        seen = []
        registry.add_span_sink(broken)
        registry.add_span_sink(seen.append)
        with registry.span("tick"):
            pass
        assert len(seen) == 1

    def test_json_lines_sink_writes_parseable_lines(self, tmp_path):
        registry = MetricsRegistry()
        path = tmp_path / "spans.jsonl"
        sink = JsonLinesSink(str(path))
        registry.add_span_sink(sink)
        with registry.span("ingest", blocks=10):
            pass
        with registry.span("refine"):
            pass
        sink.close()
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert [record["span"] for record in records] == ["ingest", "refine"]
        assert records[0]["attrs"] == {"blocks": 10}

    def test_closed_sink_drops_silently(self, tmp_path):
        registry = MetricsRegistry()
        sink = JsonLinesSink(str(tmp_path / "spans.jsonl"))
        registry.add_span_sink(sink)
        sink.close()
        with registry.span("tick"):  # must not raise
            pass


class TestBoundedLog:
    def test_behaves_like_a_list_until_the_cap(self):
        log = BoundedLog(3)
        log.append("a")
        log.extend(["b", "c"])
        assert log == ["a", "b", "c"]
        assert log.total == 3
        assert log.dropped == 0

    def test_drops_oldest_past_the_cap(self):
        log = BoundedLog(3)
        for index in range(10):
            log.append(index)
        assert log == [7, 8, 9]
        assert log.total == 10
        assert log.dropped == 7

    def test_default_retention(self):
        log = BoundedLog()
        for index in range(DEFAULT_ERROR_RETENTION + 5):
            log.append(index)
        assert len(log) == DEFAULT_ERROR_RETENTION
        assert log.total == DEFAULT_ERROR_RETENTION + 5
