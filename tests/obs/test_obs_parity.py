"""Instrumentation must be invisible: obs on vs off, byte for byte.

Two identically seeded worlds ride identical reorg-storm schedules
through full serving stacks -- one fully instrumented (registry, span
sink, periodic snapshots mid-flight), one bare.  Every externally
visible surface (funnel statistics, per-token statuses, the alert
stream, the ingested dataset, the published version count) must be
byte-identical once JSON-encoded.  The instrumented run must also have
actually *recorded* something, so a silently disabled registry cannot
fake the pass.
"""

from __future__ import annotations

import json
import random

from repro.obs import MetricsRegistry, render_prometheus
from repro.serve import ServeService
from repro.serve.wire import codec
from repro.simulation.builder import build_default_world
from repro.simulation.config import SimulationConfig
from repro.simulation.reorg import ReorgStorm

STORM_SEED = 20230711


def run_stack(registry):
    """One serving stack over a fresh tiny world, storm-driven to head."""
    world = build_default_world(SimulationConfig.tiny())
    service = ServeService.for_world(
        world, max_reorg_depth=64, registry=registry
    )
    if registry is not None:
        registry.add_span_sink(lambda record: record.as_dict())
    storm = ReorgStorm(
        world,
        random.Random(STORM_SEED),
        reorg_probability=0.45,
        max_depth=13,
    )
    storm.run(service.monitor)
    if registry is not None:
        # Mid-flight reads of the stats surface must not perturb state.
        service.metrics_snapshot()
        render_prometheus(registry)
    return service


def serving_bytes(service):
    """Every externally visible answer, canonically JSON-encoded."""
    version = service.index.current
    payload = {
        "version_info": codec.encode_version_info(version),
        "funnel": codec.encode_funnel(service.query.funnel_stats()),
        "token_order": [codec.encode_nft(nft) for nft in version.token_order],
        "confirmed": [
            codec.encode_record(record) for record in version.confirmed
        ],
        "statuses": [
            codec.encode_token_status(status)
            for _, status in sorted(
                version.token_status.items(),
                key=lambda item: (item[0].contract, item[0].token_id),
            )
        ],
        "alerts": [
            codec.encode_alert(alert) for alert in service.monitor.alerts
        ],
        "processed_block": service.monitor.processed_block,
    }
    return json.dumps(payload, sort_keys=True)


class TestObsParity:
    def test_instrumented_run_is_byte_identical_to_bare(self):
        registry = MetricsRegistry()
        instrumented = run_stack(registry)
        bare = run_stack(None)

        assert serving_bytes(instrumented) == serving_bytes(bare)

        # The pass must not be vacuous: the instrumented stack really
        # measured its run.
        snapshot = registry.snapshot()
        counters = snapshot["counters"]
        assert counters["cursor_blocks_ingested_total"] > 0
        assert counters["cursor_reorgs_total"] > 0, (
            "the storm should have forced reorgs; if not, the schedule "
            "is not exercising the instrumentation"
        )
        assert counters["monitor_ticks_total"] > 0
        assert counters["serve_versions_published_total"] > 0
        assert snapshot["histograms"]['span_seconds{span="tick"}']["count"] > 0
        assert any(
            record.name == "ingest" for record in registry.recent_spans()
        )

        # And the bare stack really ran uninstrumented.
        assert bare.registry.enabled is False
        assert bare.metrics_snapshot()["counters"] == {}

    def test_reading_stats_mid_storm_changes_nothing(self):
        """Interleaving snapshot reads with ticks is side-effect free."""
        registry = MetricsRegistry()
        world = build_default_world(SimulationConfig.tiny())
        noisy = ServeService.for_world(
            world, max_reorg_depth=64, registry=registry
        )
        storm = ReorgStorm(world, random.Random(STORM_SEED), max_depth=10)
        chain, node = world.chain, world.node
        for _ in range(1000):
            if noisy.monitor.processed_block >= node.block_number:
                break
            noisy.advance(
                min(
                    node.block_number,
                    noisy.monitor.processed_block
                    + storm.rng.randint(*storm.step_range),
                )
            )
            noisy.metrics_snapshot()  # between every tick
        else:
            raise RuntimeError("storm-free drive did not converge")

        quiet_world = build_default_world(SimulationConfig.tiny())
        quiet = ServeService.for_world(quiet_world, max_reorg_depth=64)
        quiet_rng = random.Random(STORM_SEED)
        for _ in range(1000):
            if quiet.monitor.processed_block >= quiet_world.node.block_number:
                break
            quiet.advance(
                min(
                    quiet_world.node.block_number,
                    quiet.monitor.processed_block
                    + quiet_rng.randint(*storm.step_range),
                )
            )
        else:
            raise RuntimeError("storm-free drive did not converge")

        assert serving_bytes(noisy) == serving_bytes(quiet)
