"""End-to-end trace propagation (the ISSUE 9 tentpole).

One deterministic trace id is minted per monitor tick and must flow the
whole pipeline: cursor ingest spans, the tick span, the serve index
publish, the wire fan-out, and every alert the tick raised -- under
reorg storms included, where the revision burst (REORG_DETECTED plus
its retractions) must share the causing tick's id.  The ``trace`` wire
verb then reconciles an alert frame back to the tick's spans and
latency marks, and request frames can inject a client trace that the
server echoes.

Trace minting is registry-independent (a pure function of tick counter
and cursor position), so alerts carry identical ids with observability
on or off -- the serving-parity battery in ``test_obs_parity.py`` locks
the byte-level equivalence; this file locks the linkage itself.
"""

from __future__ import annotations

import random
import re

from repro.obs import MetricsRegistry, mint_trace
from repro.obs.latency import STAGES
from repro.serve import ServeService
from repro.serve.wire import WireClient
from repro.simulation.builder import build_default_world
from repro.simulation.config import SimulationConfig
from repro.simulation.reorg import apply_random_reorg
from repro.stream import AlertKind, StreamingMonitor

TRACE_RE = re.compile(r"^t\d{6}-[0-9a-f]{8}$")


def fresh_world():
    return build_default_world(SimulationConfig.tiny())


def storm_snapshots(world, service, rng, ticks=40):
    """Drive the monitor against a churning head; return the snapshots."""
    snapshots = []
    for tick in range(ticks):
        if service.monitor.processed_block >= world.node.block_number:
            apply_random_reorg(
                world.chain, rng.randint(1, 10), rng, drop_probability=0.35
            )
        service._mark_block_seen()
        snapshots.append(
            service.monitor.advance(
                min(
                    world.node.block_number,
                    service.monitor.processed_block + rng.randint(10, 60),
                )
            )
        )
        if tick % 3 == 2:
            apply_random_reorg(
                world.chain, rng.randint(1, 8), rng, drop_probability=0.3
            )
    return snapshots


class TestTraceMinting:
    def test_deterministic_and_well_formed(self):
        assert mint_trace(7, 123) == mint_trace(7, 123)
        assert mint_trace(7, 123) != mint_trace(8, 123)
        assert mint_trace(7, 123) != mint_trace(7, 124)
        assert TRACE_RE.match(mint_trace(7, 123))

    def test_predict_trace_matches_the_next_tick(self):
        world = fresh_world()
        monitor = StreamingMonitor.for_world(world)
        predicted = monitor.predict_trace()
        snapshot = monitor.advance(50)
        assert snapshot.trace == predicted
        assert monitor.current_trace == predicted
        monitor.close()

    def test_traces_identical_with_and_without_registry(self):
        bare = StreamingMonitor.for_world(fresh_world())
        instrumented = StreamingMonitor.for_world(
            fresh_world(), registry=MetricsRegistry()
        )
        for _ in range(4):
            assert bare.advance(
                bare.processed_block + 40
            ).trace == instrumented.advance(instrumented.processed_block + 40).trace
        assert [a.trace for a in bare.alerts] == [
            a.trace for a in instrumented.alerts
        ]
        bare.close()
        instrumented.close()


class TestReorgStormPropagation:
    def test_every_alert_carries_its_ticks_trace(self):
        world = fresh_world()
        registry = MetricsRegistry()
        monitor = StreamingMonitor.for_world(world, registry=registry)
        service = ServeService(monitor, registry=registry)
        rng = random.Random(97)
        snapshots = storm_snapshots(world, service, rng)
        service.shutdown()

        retractions = 0
        reorg_ticks = 0
        assert len({s.trace for s in snapshots}) == len(snapshots)
        for snapshot in snapshots:
            assert TRACE_RE.match(snapshot.trace), snapshot.trace
            for alert in snapshot.alerts:
                # The linkage bar: the alert's trace IS the tick's trace.
                assert alert.trace == snapshot.trace, alert.kind
            if snapshot.reorg_depth > 0:
                reorg_ticks += 1
                # The revision burst shares the causing tick's id: the
                # REORG_DETECTED opener and any retraction it caused are
                # correlated by trace alone.
                kinds = [alert.kind for alert in snapshot.alerts]
                if kinds:
                    assert kinds[0] is AlertKind.REORG_DETECTED
            retractions += sum(
                1
                for alert in snapshot.alerts
                if alert.kind is AlertKind.ACTIVITY_RETRACTED
            )
        assert reorg_ticks > 0, "the storm never reorganized -- test is vacuous"
        assert retractions > 0, "the storm never retracted -- test is vacuous"

        # Every retraction in the log can be traced back to exactly one
        # snapshot, and that snapshot either rolled blocks back or
        # published the retraction beside its reorg alert.
        by_trace = {snapshot.trace: snapshot for snapshot in snapshots}
        for alert in monitor.alerts:
            if alert.kind is not AlertKind.ACTIVITY_RETRACTED:
                continue
            snapshot = by_trace[alert.trace]
            assert alert in snapshot.alerts

    def test_span_ring_reconciles_with_snapshot_traces(self):
        world = fresh_world()
        registry = MetricsRegistry()
        monitor = StreamingMonitor.for_world(world, registry=registry)
        service = ServeService(monitor, registry=registry)
        snapshots = storm_snapshots(world, service, random.Random(13), ticks=10)
        service.shutdown()

        spans_by_trace = {}
        for record in registry.recent_spans():
            spans_by_trace.setdefault(record.trace, []).append(record.name)
        # The ring is bounded; the last few ticks must be fully present,
        # each with its ingest and tick spans tagged by the tick's trace.
        for snapshot in snapshots[-3:]:
            names = spans_by_trace.get(snapshot.trace, [])
            assert "tick" in names, (snapshot.trace, names)
            assert "ingest" in names, (snapshot.trace, names)


class TestWireEndToEnd:
    def test_one_trace_links_spans_alerts_and_latency(self):
        """Ingest with a live subscriber: the pushed frame's trace id
        resolves through the ``trace`` verb to the tick's spans, alert
        seqs and the full five-stage latency path."""
        world = fresh_world()
        registry = MetricsRegistry()
        monitor = StreamingMonitor.for_world(world, registry=registry)
        service = ServeService(monitor, registry=registry)
        server = service.serve_wire()
        try:
            with WireClient(*server.address) as subscriber_client:
                stream = subscriber_client.subscribe(-1)
                while service.monitor.processed_block < world.node.block_number:
                    service.advance(service.monitor.processed_block + 50)
                received = []
                while True:
                    alert = stream.next(timeout=5.0)
                    if alert is None:
                        break
                    received.append(alert)
                    if len(received) >= len(monitor.alerts):
                        break
            assert received, "subscriber saw no alerts"
            assert [a.seq for a in received] == list(range(len(received)))
            # Pushed frames carry the tick's trace, byte-for-byte the
            # same id the in-process alert holds.
            for pushed, held in zip(received, monitor.alerts):
                assert pushed.trace == held.trace

            probe = received[-1]
            assert TRACE_RE.match(probe.trace)
            with WireClient(*server.address) as client:
                lookup = client.trace_lookup(probe.trace)
                missing = client.trace_lookup("t999999-00000000")
            assert lookup["found"] is True
            # The verb's alert seqs are exactly the log's alerts with
            # that trace.
            assert lookup["alert_seqs"] == [
                alert.seq
                for alert in monitor.alerts
                if alert.trace == probe.trace
            ]
            assert probe.seq in lookup["alert_seqs"]
            # The tick's spans came back from the ring...
            span_names = [span["span"] for span in lookup["spans"]]
            assert "tick" in span_names
            assert all(
                span.get("trace") == probe.trace for span in lookup["spans"]
            )
            # ...and the ledger saw the early pipeline marks.
            assert "tick_start" in lookup["marks"]
            assert "publish" in lookup["marks"]
            assert missing["found"] is False

            # With a subscriber attached the whole latency taxonomy is
            # exercised: schedule/detect/fanout/deliver/total all have
            # observations (the acceptance bar for the ledger).
            histograms = registry.snapshot()["histograms"]
            for stage in STAGES:
                stats = histograms[f'alert_latency_seconds{{stage="{stage}"}}']
                assert stats["count"] > 0, stage
                assert stats["sum"] >= 0.0
        finally:
            service.shutdown()

    def test_request_frames_echo_injected_trace(self, tiny_world):
        service = ServeService.for_world(tiny_world)
        service.run()
        server = service.serve_wire()
        try:
            self._check_trace_echo(server)
        finally:
            service.shutdown()

    def _check_trace_echo(self, server):
        with WireClient(*server.address) as client:
            client.request("ping", trace_id="client-trace-1")
            assert client.last_trace == "client-trace-1"
            # Requests without a trace get none invented.
            client.ping()
            assert client.last_trace is None
            # Errors echo the trace too, so a client can correlate its
            # failures.
            from repro.serve.wire import WireRequestError

            try:
                client.request("no-such-verb", trace_id="client-trace-2")
            except WireRequestError:
                pass
            assert client.last_trace == "client-trace-2"
