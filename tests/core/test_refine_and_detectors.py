"""Unit tests for refinement and the five confirmation techniques.

Each test scripts an exact on-chain history in a micro world and runs
the real ingest + pipeline over it, asserting which detector fires.
"""

from __future__ import annotations

import pytest

from repro.core.activity import DetectionMethod
from repro.core.detectors.base import DetectionConfig
from repro.core.detectors.pipeline import WashTradingPipeline
from repro.core.refine import RefinementFunnel
from tests.helpers import make_micro_world, script_round_trip_wash


class TestRefinementFunnel:
    def test_legitimate_forward_sales_produce_no_candidates(self):
        world = make_micro_world()
        kit = world.kit
        alice = world.account("alice", funded_eth=20)
        bob = world.account("bob", funded_eth=20)
        carol = world.account("carol", funded_eth=20)
        token_id = kit.mint(world.collection_address, alice, day=1)
        kit.marketplace_sale("OpenSea", world.collection_address, token_id, alice, bob, 1.0, day=2)
        kit.marketplace_sale("OpenSea", world.collection_address, token_id, bob, carol, 2.0, day=3)
        result = world.run_pipeline()
        assert result.candidate_count == 0
        assert result.activity_count == 0

    def test_round_trip_is_a_candidate(self):
        world = make_micro_world()
        script_round_trip_wash(world)
        result = world.run_pipeline()
        assert result.candidate_count == 1

    def test_service_account_cycle_is_filtered(self):
        world = make_micro_world()
        kit = world.kit
        user = world.account("user", funded_eth=20)
        token_id = kit.mint(world.collection_address, user, day=1)
        hot_wallet = world.exchange.hot_wallet
        kit.direct_transfer(world.collection_address, token_id, user, hot_wallet, day=2)
        kit.direct_transfer(world.collection_address, token_id, hot_wallet, user, day=3)
        funnel = RefinementFunnel(world.labels, world.chain.state.is_contract)
        refinement = funnel.run(world.dataset())
        assert refinement.stage("candidates").nft_count == 1
        assert refinement.stage("services-removed").nft_count == 0
        assert not refinement.candidates

    def test_contract_account_cycle_is_filtered(self):
        world = make_micro_world()
        kit = world.kit
        user = world.account("user", funded_eth=20)
        vault = world.marketplaces.venue("Foundation")  # any contract account works
        token_id = kit.mint(world.collection_address, user, day=1)
        kit.direct_transfer(world.collection_address, token_id, user, vault.bound_address, day=2)
        # Move it back by impersonating the contract is impossible; craft the
        # return leg through the escrow path instead: use a second user cycle
        # via the OTC desk contract address as an intermediate owner.
        kit.direct_transfer(world.collection_address, token_id, vault.bound_address, user, day=3) \
            if world.collection.ownerOf(token_id) == vault.bound_address and False else None
        # The cycle above cannot be completed without contract cooperation, so
        # instead verify the funnel drops a user<->contract cycle built from
        # dataset-level transfers: stake-like flows are covered in the
        # simulation integration tests.  Here we assert the contract filter
        # stage exists and never increases counts.
        funnel = RefinementFunnel(world.labels, world.chain.state.is_contract)
        refinement = funnel.run(world.dataset())
        stages = {stage.name: stage for stage in refinement.stages}
        assert stages["contracts-removed"].nft_count <= stages["services-removed"].nft_count

    def test_zero_volume_cycle_is_filtered(self):
        world = make_micro_world()
        kit = world.kit
        alice = world.account("alice", funded_eth=20)
        bob = world.account("bob", funded_eth=20)
        token_id = kit.mint(world.collection_address, alice, day=1)
        kit.direct_transfer(world.collection_address, token_id, alice, bob, day=2)
        kit.direct_transfer(world.collection_address, token_id, bob, alice, day=3)
        funnel = RefinementFunnel(world.labels, world.chain.state.is_contract)
        refinement = funnel.run(world.dataset())
        assert refinement.stage("contracts-removed").nft_count == 1
        assert refinement.stage("nonzero-volume").nft_count == 0

    def test_skip_flags_disable_stages(self):
        world = make_micro_world()
        kit = world.kit
        alice = world.account("alice", funded_eth=20)
        bob = world.account("bob", funded_eth=20)
        token_id = kit.mint(world.collection_address, alice, day=1)
        kit.direct_transfer(world.collection_address, token_id, alice, bob, day=2)
        kit.direct_transfer(world.collection_address, token_id, bob, alice, day=3)
        funnel = RefinementFunnel(
            world.labels, world.chain.state.is_contract, skip_zero_volume_removal=True
        )
        refinement = funnel.run(world.dataset())
        assert refinement.candidates  # the zero-volume cycle survives


class TestCommonFunderDetector:
    def test_external_funder_confirms(self):
        world = make_micro_world()
        script_round_trip_wash(world, with_funder=True, with_exit=False)
        result = world.run_pipeline()
        assert result.activity_count == 1
        activity = result.activities[0]
        assert activity.detected_by(DetectionMethod.COMMON_FUNDER)
        evidence = activity.evidence_for(DetectionMethod.COMMON_FUNDER)
        assert evidence.details["kind"] == "external"

    def test_exchange_funding_does_not_count_as_funder(self):
        world = make_micro_world()
        script_round_trip_wash(world, with_funder=False, with_exit=False)
        result = world.run_pipeline()
        # Funded straight from an exchange and never cashing out to a common
        # account, the candidate has no collusion evidence at all: it stays
        # a candidate but is not confirmed (the exchange is not accepted as
        # a common funder).
        assert result.candidate_count == 1
        assert result.activity_count == 0
        assert len(result.unconfirmed) == 1

    def test_internal_funder_confirms(self):
        world = make_micro_world()
        kit = world.kit
        alice = world.account("alice", funded_eth=40)
        bob = world.account("bob")
        # Alice herself funds Bob before the activity: internal common funder.
        kit.transfer_eth(alice, bob, 10.0, day=4)
        token_id = kit.mint(world.collection_address, alice, day=5)
        kit.marketplace_sale("OpenSea", world.collection_address, token_id, alice, bob, 3.0, day=5)
        kit.marketplace_sale("OpenSea", world.collection_address, token_id, bob, alice, 2.8, day=5)
        result = world.run_pipeline()
        activity = result.activities[0]
        evidence = activity.evidence_for(DetectionMethod.COMMON_FUNDER)
        assert evidence is not None
        assert evidence.details["kind"] == "internal"
        assert result.funder_kind_counts()["internal"] == 1


class TestCommonExitDetector:
    def test_common_exit_confirms(self):
        world = make_micro_world()
        script_round_trip_wash(world, with_funder=False, with_exit=True)
        result = world.run_pipeline()
        activity = result.activities[0]
        assert activity.detected_by(DetectionMethod.COMMON_EXIT)

    def test_exit_to_exchange_does_not_count(self):
        world = make_micro_world()
        kit = world.kit
        names = script_round_trip_wash(world, with_funder=False, with_exit=False)
        # Both members cash out to the exchange instead of a private exit:
        # the exchange hot wallet is not accepted as a common exit, so the
        # candidate remains unconfirmed.
        for member in (names["alice"], names["bob"]):
            balance = kit.balance_eth(member)
            if balance > 1:
                kit.deposit_to_exchange(member, balance - 0.5, day=8)
        result = world.run_pipeline()
        assert result.candidate_count == 1
        assert result.activity_count == 0

    def test_funder_and_exit_overlap_in_venn(self):
        world = make_micro_world()
        script_round_trip_wash(world, with_funder=True, with_exit=True)
        result = world.run_pipeline()
        venn = result.venn_counts()
        assert any(
            DetectionMethod.COMMON_FUNDER in key and DetectionMethod.COMMON_EXIT in key
            for key in venn
        )


class TestZeroRiskDetector:
    def test_otc_round_trip_is_zero_risk(self):
        world = make_micro_world()
        kit = world.kit
        alice = world.account("alice", funded_eth=30)
        bob = world.account("bob", funded_eth=30)
        token_id = kit.mint(world.collection_address, alice, day=2)
        kit.otc_trade(world.collection_address, token_id, alice, bob, 5.0, day=3)
        kit.otc_trade(world.collection_address, token_id, bob, alice, 5.0, day=3)
        result = world.run_pipeline()
        activity = result.activities[0]
        assert activity.detected_by(DetectionMethod.ZERO_RISK)

    def test_marketplace_fee_leak_breaks_zero_risk(self):
        world = make_micro_world()
        script_round_trip_wash(world, venue="OpenSea", price_eth=5.0, rounds=4)
        result = world.run_pipeline()
        activity = result.activities[0]
        assert not activity.detected_by(DetectionMethod.ZERO_RISK)

    def test_tolerance_can_be_widened_for_ablation(self):
        world = make_micro_world()
        script_round_trip_wash(world, venue="OpenSea", price_eth=5.0, rounds=4)
        lax = DetectionConfig(zero_risk_relative_tolerance=0.2)
        result = world.run_pipeline(config=lax)
        activity = result.activities[0]
        assert activity.detected_by(DetectionMethod.ZERO_RISK)


class TestSelfTradeDetector:
    def test_self_transfer_with_value_confirms(self):
        world = make_micro_world()
        kit = world.kit
        alice = world.account("alice", funded_eth=20)
        token_id = kit.mint(world.collection_address, alice, day=1)
        kit.self_trade(world.collection_address, token_id, alice, day=2, attached_value_eth=1.0)
        result = world.run_pipeline()
        assert result.activity_count == 1
        assert result.activities[0].detected_by(DetectionMethod.SELF_TRADE)
        assert result.activities[0].component.account_count == 1

    def test_unpaid_self_transfer_is_filtered_as_zero_volume(self):
        world = make_micro_world()
        kit = world.kit
        alice = world.account("alice", funded_eth=20)
        token_id = kit.mint(world.collection_address, alice, day=1)
        kit.self_trade(world.collection_address, token_id, alice, day=2, attached_value_eth=0.0)
        result = world.run_pipeline()
        assert result.activity_count == 0


class TestRepeatedSCC:
    def test_same_account_set_confirms_second_nft(self):
        world = make_micro_world()
        kit = world.kit
        # First NFT: exchange-funded but confirmed through its common exit.
        names = script_round_trip_wash(
            world, price_eth=3.0, start_day=5, with_funder=False, with_exit=True
        )
        alice, bob = names["alice"], names["bob"]
        # Second NFT: same two accounts, exchange-funded, no exit afterwards,
        # traded through the venue (so not zero-risk): only the repeated-SCC
        # rule can confirm it.
        world.fund("wash-alice", 8.0, day=9)
        world.fund("wash-bob", 8.0, day=9)
        token_id = kit.mint(world.collection_address, alice, day=20)
        kit.marketplace_sale("OpenSea", world.collection_address, token_id, alice, bob, 4.0, day=20)
        kit.marketplace_sale("OpenSea", world.collection_address, token_id, bob, alice, 3.8, day=20)
        result = world.run_pipeline()
        assert result.activity_count == 2
        methods_by_nft = {activity.nft.token_id: activity.methods for activity in result.activities}
        assert DetectionMethod.REPEATED_SCC in methods_by_nft[token_id]

    def test_disabling_methods_reduces_detection(self):
        world = make_micro_world()
        script_round_trip_wash(world)
        pipeline = WashTradingPipeline(
            labels=world.labels,
            is_contract=world.chain.state.is_contract,
            enabled_methods=[DetectionMethod.ZERO_RISK],
        )
        result = pipeline.run(world.dataset())
        assert result.activity_count == 0
        assert result.candidate_count == 1


class TestKindCountReporting:
    def make_result(self, kind):
        """A PipelineResult with one activity carrying a given funder kind."""
        from repro.chain.types import NFTKey
        from repro.core.activity import (
            CandidateComponent,
            DetectionEvidence,
            WashTradingActivity,
        )
        from repro.core.detectors.pipeline import PipelineResult
        from repro.core.refine import RefinementResult

        component = CandidateComponent(
            nft=NFTKey(contract="0x" + "a" * 40, token_id=1),
            accounts=frozenset({"0x1", "0x2"}),
            transfers=(),
        )
        activity = WashTradingActivity(
            component=component,
            evidence=[
                DetectionEvidence(
                    method=DetectionMethod.COMMON_FUNDER, details={"kind": kind}
                ),
                DetectionEvidence(
                    method=DetectionMethod.COMMON_EXIT, details={"kind": kind}
                ),
            ],
        )
        return PipelineResult(
            refinement=RefinementResult(candidates=[component], stages=[]),
            activities=[activity],
            unconfirmed=[],
        )

    def test_expected_kinds_are_counted(self):
        result = self.make_result("external")
        assert result.funder_kind_counts() == {"internal": 0, "external": 1}
        assert result.exit_kind_counts() == {"internal": 0, "external": 1}

    def test_unexpected_kind_does_not_crash_the_report(self):
        result = self.make_result("sidechannel")
        counts = result.funder_kind_counts()
        assert counts["sidechannel"] == 1
        assert counts["internal"] == 0 and counts["external"] == 0
        exits = result.exit_kind_counts()
        assert exits["sidechannel"] == 1
