"""Unit tests for the characterization layer (Sec. V)."""

from __future__ import annotations

import pytest

from repro.chain.types import NFTKey
from repro.core.activity import CandidateComponent, DetectionEvidence, DetectionMethod, WashTradingActivity
from repro.core.characterization.patterns import (
    PATTERN_LIBRARY,
    account_count_distribution,
    account_count_fractions,
    classify_activities,
    classify_component,
)
from repro.core.characterization.serial import serial_trader_stats, top_collaborating_pairs
from repro.core.characterization.temporal import (
    fraction_with_lifetime_within,
    lifetimes_seconds,
)
from repro.ingest.records import NFTTransfer
from repro.utils.timeutil import SECONDS_PER_DAY


def make_component(edges, nft_id=1, contract="0x" + "c" * 40, price=100, base_ts=0):
    """Build a CandidateComponent from (sender, recipient) edges."""
    transfers = tuple(
        NFTTransfer(
            nft=NFTKey(contract=contract, token_id=nft_id),
            sender=sender,
            recipient=recipient,
            tx_hash=f"0x{nft_id}-{index}",
            block_number=index,
            timestamp=base_ts + index * 3600,
            price_wei=price,
            gas_fee_wei=1,
            tx_sender=recipient,
        )
        for index, (sender, recipient) in enumerate(edges)
    )
    accounts = frozenset(
        account for sender, recipient in edges for account in (sender, recipient)
    )
    return CandidateComponent(
        nft=NFTKey(contract=contract, token_id=nft_id), accounts=accounts, transfers=transfers
    )


def make_activity(edges, **kwargs):
    return WashTradingActivity(
        component=make_component(edges, **kwargs),
        evidence=[DetectionEvidence(method=DetectionMethod.COMMON_FUNDER)],
    )


class TestPatternClassification:
    def test_self_loop_is_pattern_zero(self):
        assert classify_component(make_component([("A", "A")])) == 0

    def test_round_trip_is_pattern_one(self):
        assert classify_component(make_component([("A", "B"), ("B", "A")])) == 1

    def test_three_cycle_is_pattern_two(self):
        assert classify_component(make_component([("A", "B"), ("B", "C"), ("C", "A")])) == 2

    def test_chain_of_round_trips_is_pattern_three(self):
        edges = [("A", "B"), ("B", "A"), ("B", "C"), ("C", "B")]
        assert classify_component(make_component(edges)) == 3

    def test_four_cycle_is_pattern_five(self):
        edges = [("A", "B"), ("B", "C"), ("C", "D"), ("D", "A")]
        assert classify_component(make_component(edges)) == 5

    def test_classification_ignores_node_names(self):
        edges_one = [("A", "B"), ("B", "A")]
        edges_two = [("X", "Y"), ("Y", "X")]
        assert classify_component(make_component(edges_one)) == classify_component(
            make_component(edges_two)
        )

    def test_parallel_edges_collapse(self):
        edges = [("A", "B"), ("B", "A"), ("A", "B"), ("B", "A")]
        assert classify_component(make_component(edges)) == 1

    def test_unknown_shape_returns_none(self):
        # A 7-node cycle is outside the library.
        nodes = [chr(ord("A") + i) for i in range(7)]
        edges = [(nodes[i], nodes[(i + 1) % 7]) for i in range(7)]
        assert classify_component(make_component(edges)) is None

    def test_library_shapes_are_distinct(self):
        ids = {spec.pattern_id for spec in PATTERN_LIBRARY}
        assert len(ids) == len(PATTERN_LIBRARY) == 12

    def test_classify_activities_counts(self):
        activities = [
            make_activity([("A", "B"), ("B", "A")], nft_id=1),
            make_activity([("C", "D"), ("D", "C")], nft_id=2),
            make_activity([("A", "A")], nft_id=3),
        ]
        counts = classify_activities(activities)
        assert counts[1] == 2
        assert counts[0] == 1


class TestAccountCounts:
    def test_distribution_buckets(self):
        activities = [
            make_activity([("A", "A")], nft_id=1),
            make_activity([("A", "B"), ("B", "A")], nft_id=2),
            make_activity([("A", "B"), ("B", "A")], nft_id=3),
            make_activity(
                [("A", "B"), ("B", "C"), ("C", "D"), ("D", "E"), ("E", "F"), ("F", "G"), ("G", "A")],
                nft_id=4,
            ),
        ]
        counts = account_count_distribution(activities)
        assert counts["1"] == 1
        assert counts["2"] == 2
        assert counts["6+"] == 1

    def test_fractions_sum_to_one(self):
        activities = [make_activity([("A", "B"), ("B", "A")], nft_id=i) for i in range(4)]
        fractions = account_count_fractions(activities)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_empty_input(self):
        assert sum(account_count_distribution([]).values()) == 0
        assert sum(account_count_fractions([]).values()) == 0


class TestTemporal:
    def test_lifetime_computation(self):
        activity = make_activity([("A", "B"), ("B", "A")], nft_id=1)
        assert lifetimes_seconds([activity]) == [3600]

    def test_fraction_within(self):
        short = make_activity([("A", "B"), ("B", "A")], nft_id=1)
        long_edges = [("A", "B")] + [("B", "A")]
        long_activity = WashTradingActivity(
            component=make_component(long_edges, nft_id=2, base_ts=0),
            evidence=[DetectionEvidence(method=DetectionMethod.COMMON_EXIT)],
        )
        # Make the second activity span 20 days by rebuilding its transfers.
        long_activity.component.transfers[-1].__class__  # no-op, keeps mypy quiet
        activities = [short, long_activity]
        assert 0 <= fraction_with_lifetime_within(activities, 1) <= 1

    def test_fraction_of_empty_is_zero(self):
        assert fraction_with_lifetime_within([], 10) == 0.0


class TestSerialTraders:
    def test_serial_identification(self):
        activities = [
            make_activity([("A", "B"), ("B", "A")], nft_id=1),
            make_activity([("A", "C"), ("C", "A")], nft_id=2),
            make_activity([("D", "E"), ("E", "D")], nft_id=3),
        ]
        stats = serial_trader_stats(activities)
        assert stats.serial_accounts == 1  # only A participates twice
        assert stats.total_accounts == 5
        assert stats.activities_with_serial == 2
        assert stats.serial_activity_fraction == pytest.approx(2 / 3)
        assert stats.most_active_account == "A"
        assert stats.max_activities_by_one_account == 2

    def test_same_collection_serial(self):
        activities = [
            make_activity([("A", "B"), ("B", "A")], nft_id=1, contract="0x" + "1" * 40),
            make_activity([("A", "C"), ("C", "A")], nft_id=2, contract="0x" + "1" * 40),
        ]
        stats = serial_trader_stats(activities)
        assert stats.serial_traders_hitting_same_collection == 1
        assert stats.same_collection_fraction == 1.0

    def test_serial_only_collaboration(self):
        # A and B always trade together: both are serial and collaborate
        # exclusively with serials.
        activities = [
            make_activity([("A", "B"), ("B", "A")], nft_id=1),
            make_activity([("A", "B"), ("B", "A")], nft_id=2),
        ]
        stats = serial_trader_stats(activities)
        assert stats.serial_only_collaborators == 2
        assert stats.activities_all_serial == 2

    def test_top_collaborating_pairs(self):
        activities = [
            make_activity([("A", "B"), ("B", "A")], nft_id=1),
            make_activity([("A", "B"), ("B", "A")], nft_id=2),
            make_activity([("C", "D"), ("D", "C")], nft_id=3),
        ]
        pairs = top_collaborating_pairs(activities, top_n=1)
        assert pairs[0][0] == ("A", "B")
        assert pairs[0][1] == 2

    def test_empty_activities(self):
        stats = serial_trader_stats([])
        assert stats.serial_accounts == 0
        assert stats.serial_account_fraction == 0.0
