"""Unit proofs for the sliding-window volume-matching detector.

The detector confirms a candidate component when some hour/day/week
window contains >= ``volume_match_min_transfers`` transfers, every
involved account's net NFT position over the window is zero, and paid
volume was generated inside it.  Windows are tried smallest-first and
the earliest match of the smallest matching size wins, so the evidence
is deterministic across batch, sharded and streaming execution.
"""

from __future__ import annotations

import pytest

from repro.chain.types import NFTKey
from repro.core.activity import CandidateComponent, DetectionMethod
from repro.core.detectors.base import DetectionConfig, DetectionContext
from repro.core.detectors.volume_match import VolumeMatchDetector
from repro.engine.executor import TransactionView
from repro.ingest.records import NFTTransfer
from repro.services.labels import LabelRegistry

NFT = NFTKey(contract="0x" + "c" * 40, token_id=7)

HOUR = 3600
DAY = 86400
WEEK = 604800

ETH = 10**18


def make_transfer(sender, recipient, ts, price, tag):
    return NFTTransfer(
        nft=NFT,
        sender=sender,
        recipient=recipient,
        tx_hash=f"0xhash{tag}",
        block_number=ts,
        timestamp=ts,
        price_wei=price,
        gas_fee_wei=10,
        tx_sender=sender,
    )


def component(rows):
    """A candidate component from (sender, recipient, ts, price) rows."""
    transfers = tuple(
        make_transfer(sender, recipient, ts, price, tag)
        for tag, (sender, recipient, ts, price) in enumerate(rows)
    )
    accounts = frozenset(t.sender for t in transfers) | frozenset(
        t.recipient for t in transfers
    )
    return CandidateComponent(nft=NFT, accounts=accounts, transfers=transfers)


def make_context(config=None):
    return DetectionContext(
        dataset=TransactionView({}),
        labels=LabelRegistry(),
        is_contract=lambda address: False,
        config=config or DetectionConfig(),
    )


def detect(rows, config=None):
    return VolumeMatchDetector().detect(component(rows), make_context(config))


def test_paid_round_trip_within_an_hour_matches():
    evidence = detect([("0xa", "0xb", 0, ETH), ("0xb", "0xa", 100, ETH)])
    assert evidence is not None
    assert evidence.method is DetectionMethod.VOLUME_MATCH
    assert evidence.details["window_seconds"] == HOUR
    assert evidence.details["start_timestamp"] == 0
    assert evidence.details["end_timestamp"] == 100
    assert evidence.details["transfer_count"] == 2
    assert evidence.details["volume_wei"] == 2 * ETH
    assert evidence.details["accounts"] == ["0xa", "0xb"]


def test_one_way_flow_never_balances():
    assert detect([("0xa", "0xb", 0, ETH), ("0xa", "0xb", 100, ETH)]) is None


def test_unpaid_round_trip_is_not_volume():
    assert detect([("0xa", "0xb", 0, 0), ("0xb", "0xa", 100, 0)]) is None


def test_wider_windows_catch_slower_round_trips():
    evidence = detect([("0xa", "0xb", 0, ETH), ("0xb", "0xa", 2 * DAY, ETH)])
    assert evidence is not None
    assert evidence.details["window_seconds"] == WEEK


def test_round_trip_slower_than_a_week_never_matches():
    assert detect([("0xa", "0xb", 0, ETH), ("0xb", "0xa", 2 * WEEK, ETH)]) is None


def test_balanced_cycle_through_three_accounts_matches():
    evidence = detect(
        [
            ("0xa", "0xb", 0, ETH),
            ("0xb", "0xc", 50, 0),
            ("0xc", "0xa", 100, ETH),
        ]
    )
    assert evidence is not None
    assert evidence.details["accounts"] == ["0xa", "0xb", "0xc"]
    assert evidence.details["transfer_count"] == 3


def test_min_transfers_is_respected():
    config = DetectionConfig(volume_match_min_transfers=3)
    assert detect([("0xa", "0xb", 0, ETH), ("0xb", "0xa", 10, ETH)], config) is None
    evidence = detect(
        [
            ("0xa", "0xb", 0, ETH),
            ("0xb", "0xc", 10, ETH),
            ("0xc", "0xa", 20, ETH),
        ],
        config,
    )
    assert evidence is not None


def test_too_few_transfers_overall_short_circuits():
    assert detect([("0xa", "0xa", 0, ETH)]) is None


def test_self_transfers_are_trivially_balanced():
    evidence = detect([("0xa", "0xa", 0, ETH), ("0xa", "0xa", 10, ETH)])
    assert evidence is not None
    assert evidence.details["accounts"] == ["0xa"]


def test_earliest_smallest_window_wins():
    """Two disjoint balanced bursts: the first, hour-sized one is reported
    even though the whole history also balances over a day."""
    evidence = detect(
        [
            ("0xa", "0xb", 0, ETH),
            ("0xb", "0xa", 100, ETH),
            ("0xa", "0xb", 50000, ETH),
            ("0xb", "0xa", 50100, ETH),
        ]
    )
    assert evidence is not None
    assert evidence.details["window_seconds"] == HOUR
    assert evidence.details["start_timestamp"] == 0
    assert evidence.details["end_timestamp"] == 100


def test_window_eviction_unbalances_split_round_trips():
    """A buy whose matching sell falls outside every window never
    balances: the middle transfer strands each window with an open
    position."""
    assert (
        detect(
            [
                ("0xa", "0xb", 0, ETH),
                ("0xb", "0xa", WEEK + 10, ETH),
                ("0xa", "0xb", 2 * WEEK + 20, ETH),
            ]
        )
        is None
    )


def test_custom_windows_are_honored():
    config = DetectionConfig(volume_match_windows=(60,))
    assert detect([("0xa", "0xb", 0, ETH), ("0xb", "0xa", 100, ETH)], config) is None
    evidence = detect(
        [("0xa", "0xb", 0, ETH), ("0xb", "0xa", 30, ETH)], config
    )
    assert evidence is not None
    assert evidence.details["window_seconds"] == 60
