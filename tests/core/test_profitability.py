"""Unit tests for the profitability analysis (Sec. VI / VII)."""

from __future__ import annotations

import pytest

from repro.core.profitability.case_studies import (
    best_resale_operation,
    best_reward_operation,
    find_rarity_games,
)
from repro.core.profitability.resale import analyze_resale_profitability
from repro.core.profitability.rewards import analyze_reward_profitability
from tests.helpers import make_micro_world, script_round_trip_wash


def script_reward_farm(world, price_eth=50.0, rounds=4, claim=True, swap_day=None):
    """A two-account LooksRare farm with funder, claims and exit."""
    kit = world.kit
    funder = world.account("farm-funder", funded_eth=price_eth * 3 + 50, day=1)
    alice = world.account("farm-alice")
    bob = world.account("farm-bob")
    kit.transfer_eth(funder, alice, price_eth + 10, 1)
    kit.transfer_eth(funder, bob, price_eth + 10, 1)
    token_id = kit.mint(world.collection_address, alice, 2)
    seller, buyer = alice, bob
    price = price_eth
    for _ in range(rounds):
        kit.marketplace_sale("LooksRare", world.collection_address, token_id, seller, buyer, price, 2)
        seller, buyer = buyer, seller
        price = price * 0.98 - 0.01
    if claim:
        for account in (alice, bob):
            kit.claim_rewards("LooksRare", account, 3)
    exit_account = world.account("farm-exit")
    for account in (alice, bob):
        balance = kit.balance_eth(account)
        if balance > 1:
            kit.transfer_eth(account, exit_account, balance - 0.5, 4)
    return alice, bob, token_id


class TestRewardProfitability:
    def test_claimed_farm_is_profitable(self):
        world = make_micro_world()
        script_reward_farm(world)
        result = world.run_pipeline()
        profitability = analyze_reward_profitability(result, world.dataset(), world.market_context())
        looks = profitability["LooksRare"]
        assert len(looks.outcomes) == 1
        outcome = looks.outcomes[0]
        assert outcome.claimed
        assert outcome.rewards_usd > 0
        assert outcome.tokens_claimed > 0
        assert outcome.nftm_fees_usd > 0
        assert outcome.transaction_fees_usd > 0
        assert outcome.successful
        assert looks.success_rate == 1.0

    def test_unclaimed_farm_counted_separately(self):
        world = make_micro_world()
        script_reward_farm(world, claim=False)
        result = world.run_pipeline()
        profitability = analyze_reward_profitability(result, world.dataset(), world.market_context())
        looks = profitability["LooksRare"]
        assert looks.unclaimed_count == 1
        assert not looks.outcomes

    def test_fees_reduce_balance(self):
        world = make_micro_world()
        script_reward_farm(world)
        result = world.run_pipeline()
        profitability = analyze_reward_profitability(result, world.dataset(), world.market_context())
        outcome = profitability["LooksRare"].outcomes[0]
        assert outcome.balance_usd == pytest.approx(
            outcome.rewards_usd - outcome.nftm_fees_usd - outcome.transaction_fees_usd
        )

    def test_table_three_stats(self):
        world = make_micro_world()
        script_reward_farm(world)
        result = world.run_pipeline()
        profitability = analyze_reward_profitability(result, world.dataset(), world.market_context())
        looks = profitability["LooksRare"]
        volume = looks.volume_stats_eth(successful=True)
        gains = looks.gain_stats_usd(successful=True)
        assert volume["min"] <= volume["mean"] <= volume["max"]
        assert gains["total"] >= gains["max"] > 0
        assert looks.volume_stats_eth(successful=False) == {"min": 0.0, "max": 0.0, "mean": 0.0}

    def test_best_reward_operation_case_study(self):
        world = make_micro_world()
        script_reward_farm(world)
        result = world.run_pipeline()
        profitability = analyze_reward_profitability(result, world.dataset(), world.market_context())
        best = best_reward_operation(profitability)
        assert best is not None
        assert best.venue == "LooksRare"


class TestResaleProfitability:
    def script_pump_and_dump(self, world, resale_price=20.0):
        kit = world.kit
        creator = world.account("creator", funded_eth=5)
        funder = world.account("pump-funder", funded_eth=120, day=1)
        alice = world.account("pump-alice")
        bob = world.account("pump-bob")
        kit.transfer_eth(funder, alice, 40, 1)
        kit.transfer_eth(funder, bob, 40, 1)
        token_id = kit.mint(world.collection_address, creator, 2)
        kit.marketplace_sale("OpenSea", world.collection_address, token_id, creator, alice, 1.0, 2)
        kit.marketplace_sale("OpenSea", world.collection_address, token_id, alice, bob, 5.0, 3)
        kit.marketplace_sale("OpenSea", world.collection_address, token_id, bob, alice, 10.0, 4)
        if resale_price:
            victim = world.account("victim", funded_eth=resale_price + 5, day=5)
            kit.marketplace_sale(
                "OpenSea", world.collection_address, token_id, alice, victim, resale_price, 5
            )
        return token_id

    def test_profitable_resale(self):
        world = make_micro_world()
        self.script_pump_and_dump(world, resale_price=20.0)
        result = world.run_pipeline()
        resale = analyze_resale_profitability(result, world.dataset(), world.market_context())
        assert resale.total_activities == 1
        outcome = resale.outcomes[0]
        assert outcome.sold
        assert outcome.buy_price_wei > 0
        assert outcome.resell_price_wei > outcome.buy_price_wei
        assert outcome.net_profit_eth > 0
        assert outcome.net_profit_usd > 0
        assert resale.success_rate_net() == 1.0

    def test_unsold_nft_detected(self):
        world = make_micro_world()
        self.script_pump_and_dump(world, resale_price=0)
        result = world.run_pipeline()
        resale = analyze_resale_profitability(result, world.dataset(), world.market_context())
        assert resale.unsold_count == 1
        assert resale.unsold_fraction == 1.0

    def test_losing_resale(self):
        world = make_micro_world()
        self.script_pump_and_dump(world, resale_price=0.5)
        result = world.run_pipeline()
        resale = analyze_resale_profitability(result, world.dataset(), world.market_context())
        outcome = resale.outcomes[0]
        assert outcome.sold
        assert outcome.net_profit_eth < 0
        assert resale.success_rate_net() == 0.0
        assert resale.mean_loss_eth() > 0

    def test_fees_push_marginal_resale_into_loss(self):
        world = make_micro_world()
        # Resell just barely above the buy price: gross positive, net negative.
        self.script_pump_and_dump(world, resale_price=1.3)
        result = world.run_pipeline()
        resale = analyze_resale_profitability(result, world.dataset(), world.market_context())
        outcome = resale.outcomes[0]
        assert outcome.gross_profit_eth > 0
        assert outcome.net_profit_eth < 0

    def test_reward_venues_excluded_from_resale_analysis(self):
        world = make_micro_world()
        script_reward_farm(world)
        result = world.run_pipeline()
        resale = analyze_resale_profitability(result, world.dataset(), world.market_context())
        assert resale.total_activities == 0

    def test_best_resale_case_study(self):
        world = make_micro_world()
        self.script_pump_and_dump(world, resale_price=20.0)
        result = world.run_pipeline()
        resale = analyze_resale_profitability(result, world.dataset(), world.market_context())
        best = best_resale_operation(resale.outcomes)
        assert best is not None
        assert best.net_profit_usd > 0


class TestRarityGames:
    def test_sell_and_return_pattern_found(self):
        world = make_micro_world()
        kit = world.kit
        funder = world.account("rarity-funder", funded_eth=60, day=1)
        seller = world.account("rarity-seller")
        buyers = [world.account(f"rarity-buyer-{i}") for i in range(2)]
        for member in (seller, *buyers):
            kit.transfer_eth(funder, member, 10, 1)
        token_id = kit.mint(world.collection_address, seller, 2)
        for day, buyer in enumerate(buyers, start=3):
            kit.marketplace_sale("OpenSea", world.collection_address, token_id, seller, buyer, 2.0, day)
            kit.direct_transfer(world.collection_address, token_id, buyer, seller, day)
        result = world.run_pipeline()
        cases = find_rarity_games(result, min_rounds=2)
        assert len(cases) == 1
        assert cases[0].seller == seller
        assert cases[0].paid_marketplace_sales == 2
        assert cases[0].free_offmarket_returns == 2

    def test_ordinary_wash_is_not_a_rarity_game(self):
        world = make_micro_world()
        script_round_trip_wash(world)
        result = world.run_pipeline()
        assert find_rarity_games(result) == []
