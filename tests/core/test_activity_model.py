"""Unit tests for the candidate/activity data model."""

from __future__ import annotations

import pytest

from repro.core.activity import DetectionEvidence, DetectionMethod, WashTradingActivity
from tests.core.test_characterization import make_component


class TestCandidateComponent:
    def test_volume_and_counts(self):
        component = make_component([("A", "B"), ("B", "A")], price=10)
        assert component.volume_wei == 20
        assert component.account_count == 2
        assert component.transfer_count == 2
        assert not component.is_zero_volume

    def test_zero_volume_flag(self):
        component = make_component([("A", "B"), ("B", "A")], price=0)
        assert component.is_zero_volume

    def test_lifetime_and_timestamps(self):
        component = make_component([("A", "B"), ("B", "A"), ("A", "B")], base_ts=1000)
        assert component.first_timestamp == 1000
        assert component.last_timestamp == 1000 + 2 * 3600
        assert component.lifetime_seconds == 2 * 3600

    def test_self_loop_detection(self):
        assert make_component([("A", "A")]).has_self_loop()
        assert not make_component([("A", "B"), ("B", "A")]).has_self_loop()

    def test_tx_hashes_are_distinct(self):
        component = make_component([("A", "B"), ("B", "A")])
        assert len(component.tx_hashes) == 2

    def test_dominant_marketplace_none_for_offmarket(self):
        assert make_component([("A", "B"), ("B", "A")]).dominant_marketplace() is None


class TestWashTradingActivity:
    def test_methods_and_evidence_lookup(self):
        activity = WashTradingActivity(
            component=make_component([("A", "B"), ("B", "A")]),
            evidence=[
                DetectionEvidence(method=DetectionMethod.COMMON_FUNDER, details={"kind": "external"}),
                DetectionEvidence(method=DetectionMethod.COMMON_EXIT),
            ],
        )
        assert activity.methods == {DetectionMethod.COMMON_FUNDER, DetectionMethod.COMMON_EXIT}
        assert activity.detected_by(DetectionMethod.COMMON_FUNDER)
        assert not activity.detected_by(DetectionMethod.ZERO_RISK)
        assert activity.evidence_for(DetectionMethod.COMMON_FUNDER).details["kind"] == "external"
        assert activity.evidence_for(DetectionMethod.SELF_TRADE) is None

    def test_activity_delegates_to_component(self):
        component = make_component([("A", "B"), ("B", "A")], price=7)
        activity = WashTradingActivity(component=component, evidence=[])
        assert activity.volume_wei == component.volume_wei
        assert activity.accounts == component.accounts
        assert activity.nft == component.nft
        assert activity.lifetime_seconds == component.lifetime_seconds

    def test_transaction_analysis_methods_constant(self):
        methods = DetectionMethod.transaction_analysis_methods()
        assert set(methods) == {
            DetectionMethod.ZERO_RISK,
            DetectionMethod.COMMON_FUNDER,
            DetectionMethod.COMMON_EXIT,
        }
