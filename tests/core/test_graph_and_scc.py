"""Unit and property tests for transaction graphs and SCC search."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.chain.types import NFTKey
from repro.core.graph import build_transaction_graph
from repro.core.scc import (
    kept_components_adjacency,
    strongly_connected_components,
    tarjan_scc,
    tarjan_scc_adjacency,
)
from repro.ingest.records import NFTTransfer

NFT = NFTKey(contract="0x" + "c" * 40, token_id=1)


def make_transfer(sender, recipient, ts=0, price=0, tx_hash=None, marketplace=None):
    return NFTTransfer(
        nft=NFT,
        sender=sender,
        recipient=recipient,
        tx_hash=tx_hash or f"0x{sender}{recipient}{ts}",
        block_number=ts,
        timestamp=ts,
        price_wei=price,
        gas_fee_wei=10,
        marketplace=marketplace,
        tx_sender=recipient,
    )


class TestTransactionGraph:
    def test_nodes_and_edges(self):
        transfers = [make_transfer("A", "B", 1, 10), make_transfer("B", "A", 2, 10)]
        graph = build_transaction_graph(NFT, transfers)
        assert graph.nodes == {"A", "B"}
        assert graph.edge_count == 2
        assert graph.total_volume_wei == 20

    def test_edges_carry_paper_annotation(self):
        transfers = [make_transfer("A", "B", 5, 42, marketplace="OpenSea")]
        graph = build_transaction_graph(NFT, transfers)
        _, _, data = next(iter(graph.graph.edges(data=True)))
        assert data["t"] == 5
        assert data["p"] == 42
        assert data["h"].startswith("0x")

    def test_transfers_sorted_chronologically(self):
        transfers = [make_transfer("B", "C", 9), make_transfer("A", "B", 1)]
        graph = build_transaction_graph(NFT, transfers)
        assert graph.first_transfer().timestamp == 1
        assert graph.last_transfer().timestamp == 9

    def test_without_nodes_removes_edges(self):
        transfers = [
            make_transfer("A", "B", 1, 10),
            make_transfer("B", "EXCHANGE", 2, 10),
            make_transfer("EXCHANGE", "C", 3, 10),
        ]
        graph = build_transaction_graph(NFT, transfers)
        pruned = graph.without_nodes(["EXCHANGE"])
        assert "EXCHANGE" not in pruned.nodes
        assert pruned.edge_count == 1

    def test_edges_between_subset(self):
        transfers = [make_transfer("A", "B", 1, 10), make_transfer("B", "C", 2, 10)]
        graph = build_transaction_graph(NFT, transfers)
        assert len(graph.edges_between({"A", "B"})) == 1

    def test_self_loop_detected(self):
        graph = build_transaction_graph(NFT, [make_transfer("A", "A", 1, 10)])
        assert graph.has_self_loop("A")

    def test_before_and_after_queries(self):
        transfers = [make_transfer("A", "B", 1), make_transfer("B", "C", 5)]
        graph = build_transaction_graph(NFT, transfers)
        assert len(graph.transfers_before(5)) == 1
        assert len(graph.transfers_after(1)) == 1

    def test_before_and_after_are_strict_on_equal_timestamps(self):
        transfers = [
            make_transfer("A", "B", 3),
            make_transfer("B", "C", 5, tx_hash="0x01"),
            make_transfer("C", "D", 5, tx_hash="0x02"),
            make_transfer("D", "E", 9),
        ]
        graph = build_transaction_graph(NFT, transfers)
        assert [t.timestamp for t in graph.transfers_before(5)] == [3]
        assert [t.timestamp for t in graph.transfers_after(5)] == [9]
        assert graph.transfers_before(0) == []
        assert graph.transfers_after(9) == []
        assert len(graph.transfers_before(100)) == 4
        assert len(graph.transfers_after(0)) == 4

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=20), max_size=15),
        st.integers(min_value=-1, max_value=21),
    )
    def test_bisect_queries_match_linear_scan(self, timestamps, pivot):
        transfers = [
            make_transfer("A", "B", ts, tx_hash=f"0x{position}")
            for position, ts in enumerate(timestamps)
        ]
        graph = build_transaction_graph(NFT, transfers)
        assert graph.transfers_before(pivot) == [
            t for t in graph.transfers if t.timestamp < pivot
        ]
        assert graph.transfers_after(pivot) == [
            t for t in graph.transfers if t.timestamp > pivot
        ]


class TestSCCDefinition:
    def test_round_trip_is_a_component(self):
        graph = nx.MultiDiGraph()
        graph.add_edges_from([("A", "B"), ("B", "A")])
        components = strongly_connected_components(graph)
        assert components == [{"A", "B"}]

    def test_chain_is_not_a_component(self):
        graph = nx.MultiDiGraph()
        graph.add_edges_from([("A", "B"), ("B", "C")])
        assert strongly_connected_components(graph) == []

    def test_self_loop_singleton_is_kept(self):
        graph = nx.MultiDiGraph()
        graph.add_edge("A", "A")
        assert strongly_connected_components(graph) == [{"A"}]

    def test_plain_singleton_is_dropped(self):
        graph = nx.MultiDiGraph()
        graph.add_node("A")
        graph.add_edge("A", "B")
        assert strongly_connected_components(graph) == []

    def test_cycle_of_three(self):
        graph = nx.MultiDiGraph()
        graph.add_edges_from([("A", "B"), ("B", "C"), ("C", "A")])
        assert strongly_connected_components(graph) == [{"A", "B", "C"}]

    def test_two_disjoint_components(self):
        graph = nx.MultiDiGraph()
        graph.add_edges_from([("A", "B"), ("B", "A"), ("X", "Y"), ("Y", "X"), ("B", "X")])
        components = strongly_connected_components(graph)
        assert {frozenset(c) for c in components} == {frozenset({"A", "B"}), frozenset({"X", "Y"})}

    def test_own_tarjan_matches_networkx_choice(self):
        graph = nx.MultiDiGraph()
        graph.add_edges_from([("A", "B"), ("B", "A"), ("B", "C")])
        with_nx = strongly_connected_components(graph, use_networkx=True)
        without_nx = strongly_connected_components(graph, use_networkx=False)
        assert {frozenset(c) for c in with_nx} == {frozenset(c) for c in without_nx}


@st.composite
def random_digraphs(draw):
    node_count = draw(st.integers(min_value=1, max_value=12))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=node_count - 1),
                st.integers(min_value=0, max_value=node_count - 1),
            ),
            max_size=40,
        )
    )
    graph = nx.MultiDiGraph()
    graph.add_nodes_from(range(node_count))
    graph.add_edges_from(edges)
    return graph


@settings(max_examples=60, deadline=None)
@given(random_digraphs())
def test_tarjan_agrees_with_networkx_on_random_graphs(graph):
    """Our Tarjan implementation partitions nodes exactly like NetworkX."""
    ours = {frozenset(component) for component in tarjan_scc(graph)}
    reference = {frozenset(component) for component in nx.strongly_connected_components(graph)}
    assert ours == reference


@settings(max_examples=60, deadline=None)
@given(random_digraphs())
def test_adjacency_tarjan_agrees_with_networkx_on_random_graphs(graph):
    """The flat adjacency-list Tarjan core partitions exactly like NetworkX."""
    nodes = list(graph.nodes)
    ids = {node: position for position, node in enumerate(nodes)}
    adjacency = [[ids[succ] for succ in graph.successors(node)] for node in nodes]
    ours = {
        frozenset(nodes[member] for member in component)
        for component in tarjan_scc_adjacency(len(nodes), adjacency)
    }
    reference = {
        frozenset(component) for component in nx.strongly_connected_components(graph)
    }
    assert ours == reference


@settings(max_examples=60, deadline=None)
@given(random_digraphs())
def test_kept_adjacency_components_match_paper_rule(graph):
    """kept_components_adjacency applies the same keep rule as the nx path."""
    nodes = list(graph.nodes)
    ids = {node: position for position, node in enumerate(nodes)}
    adjacency = [[ids[succ] for succ in graph.successors(node)] for node in nodes]
    self_loop = [graph.has_edge(node, node) for node in nodes]
    kept = {
        frozenset(nodes[member] for member in component)
        for component in kept_components_adjacency(len(nodes), adjacency, self_loop)
    }
    reference = {
        frozenset(component) for component in strongly_connected_components(graph)
    }
    assert kept == reference


@settings(max_examples=60, deadline=None)
@given(random_digraphs())
def test_scc_filter_keeps_only_cyclic_structures(graph):
    """Every kept component has >= 2 nodes or a self-loop (the paper's rule)."""
    for component in strongly_connected_components(graph):
        if len(component) == 1:
            (node,) = component
            assert graph.has_edge(node, node)
        else:
            assert len(component) >= 2
