"""Unit tests for event log construction and classification."""

from __future__ import annotations

from repro.chain.events import (
    Log,
    erc1155_transfer_log,
    erc20_transfer_log,
    erc721_transfer_log,
)
from repro.utils.hashing import ERC721_TRANSFER_SIGNATURE

ALICE = "0x" + "a" * 40
BOB = "0x" + "b" * 40
CONTRACT = "0x" + "c" * 40


class TestERC721Log:
    def test_has_four_topics(self):
        log = erc721_transfer_log(CONTRACT, ALICE, BOB, 7)
        assert len(log.topics) == 4

    def test_signature_matches_standard(self):
        log = erc721_transfer_log(CONTRACT, ALICE, BOB, 7)
        assert log.signature == ERC721_TRANSFER_SIGNATURE

    def test_classified_as_erc721(self):
        log = erc721_transfer_log(CONTRACT, ALICE, BOB, 7)
        assert log.is_erc721_transfer
        assert not log.is_erc20_transfer
        assert not log.is_erc1155_transfer

    def test_token_id_encoded_in_topic(self):
        log = erc721_transfer_log(CONTRACT, ALICE, BOB, 255)
        assert int(log.topics[3], 16) == 255


class TestERC20Log:
    def test_has_three_topics_and_amount_data(self):
        log = erc20_transfer_log(CONTRACT, ALICE, BOB, 1000)
        assert len(log.topics) == 3
        assert log.data["value"] == 1000

    def test_shares_signature_but_not_classification(self):
        log = erc20_transfer_log(CONTRACT, ALICE, BOB, 1000)
        assert log.signature == ERC721_TRANSFER_SIGNATURE
        assert log.is_erc20_transfer
        assert not log.is_erc721_transfer


class TestERC1155Log:
    def test_different_signature(self):
        log = erc1155_transfer_log(CONTRACT, ALICE, ALICE, BOB, 3, 10)
        assert log.signature != ERC721_TRANSFER_SIGNATURE
        assert log.is_erc1155_transfer
        assert not log.is_erc721_transfer


class TestLogBasics:
    def test_empty_log_signature(self):
        assert Log(address=CONTRACT, topics=()).signature == ""
