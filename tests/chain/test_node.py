"""Unit tests for the web3-like node facade."""

from __future__ import annotations

import pytest

from repro.chain.chain import Chain
from repro.chain.node import EthereumNode
from repro.chain.types import Call
from repro.contracts.base import ERC721_INTERFACE_ID
from repro.contracts.erc20 import ERC20Token
from repro.contracts.erc721 import ERC721Collection
from repro.utils.currency import eth_to_wei
from repro.utils.hashing import ERC721_TRANSFER_SIGNATURE

ALICE = "0x" + "a" * 40
BOB = "0x" + "b" * 40


@pytest.fixture()
def populated():
    chain = Chain(genesis_timestamp=1_000_000)
    chain.faucet(ALICE, eth_to_wei(50))
    nft = ERC721Collection("Apes", "APE")
    nft_address = chain.deploy_contract(nft)
    token = ERC20Token("Wrapped Ether", "WETH")
    token_address = chain.deploy_contract(token)
    chain.transact(sender=ALICE, to=nft_address, call=Call("mint", {"to": ALICE}), timestamp=1_000_100)
    chain.transact(
        sender=ALICE,
        to=nft_address,
        call=Call("transferFrom", {"sender": ALICE, "to": BOB, "token_id": 1}),
        timestamp=1_000_200,
    )
    chain.transact(sender=ALICE, to=token_address, call=Call("mint", {"to": ALICE, "amount": 10}), timestamp=1_000_300)
    return chain, EthereumNode(chain), nft_address, token_address


class TestBlocksAndTransactions:
    def test_block_number_tracks_head(self, populated):
        chain, node, *_ = populated
        assert node.block_number == chain.head_block_number

    def test_get_block_out_of_range(self, populated):
        _, node, *_ = populated
        with pytest.raises(IndexError):
            node.get_block(999)

    def test_get_transaction_and_receipt(self, populated):
        chain, node, *_ = populated
        tx = chain.blocks[0].transactions[0]
        assert node.get_transaction(tx.hash) is tx
        assert node.get_transaction_receipt(tx.hash) is tx.receipt

    def test_unknown_transaction_returns_none(self, populated):
        _, node, *_ = populated
        assert node.get_transaction("0x" + "0" * 64) is None

    def test_transactions_of_account(self, populated):
        _, node, *_ = populated
        assert len(node.get_transactions_of(ALICE)) == 3
        assert len(node.get_transactions_of(BOB)) == 1


class TestLogFilters:
    def test_topic_and_count_filter_selects_erc721_only(self, populated):
        _, node, *_ = populated
        matches = node.get_logs(topic0=ERC721_TRANSFER_SIGNATURE, topic_count=4)
        assert len(matches) == 2  # mint + transfer, not the ERC-20 mint
        assert all(log.is_erc721_transfer for _tx, log in matches)

    def test_address_filter(self, populated):
        _, node, nft_address, token_address = populated
        assert all(
            log.address == token_address
            for _tx, log in node.get_logs(address=token_address)
        )

    def test_block_range_filter(self, populated):
        _, node, *_ = populated
        assert node.get_logs(from_block=0, to_block=0, topic_count=4)
        assert not node.get_logs(from_block=99, to_block=120)


class TestAccountsAndCalls:
    def test_balance_and_code(self, populated):
        chain, node, nft_address, _ = populated
        assert node.get_balance(ALICE) == chain.state.balance_of(ALICE)
        assert node.is_contract(nft_address)
        assert not node.is_contract(ALICE)
        assert node.get_code(ALICE) == b""

    def test_supports_interface_call(self, populated):
        _, node, nft_address, token_address = populated
        assert node.call(nft_address, "supportsInterface", interface_id=ERC721_INTERFACE_ID) is True
        assert (
            node.call(token_address, "supportsInterface", interface_id=ERC721_INTERFACE_ID)
            is False
        )

    def test_call_on_eoa_raises(self, populated):
        _, node, *_ = populated
        with pytest.raises(ValueError):
            node.call(ALICE, "supportsInterface", interface_id=ERC721_INTERFACE_ID)
