"""Unit tests for the gas model."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.chain.gas import GasPriceOracle, GasSchedule, INTRINSIC_TRANSFER_GAS


class TestGasSchedule:
    def test_plain_transfer_is_intrinsic(self):
        assert GasSchedule().plain_transfer == INTRINSIC_TRANSFER_GAS

    def test_marketplace_sale_costs_more_than_transfer(self):
        schedule = GasSchedule()
        assert schedule.for_function("buy") > schedule.plain_transfer

    def test_known_functions_have_specific_costs(self):
        schedule = GasSchedule()
        assert schedule.for_function("claim") == schedule.reward_claim
        assert schedule.for_function("transferFrom") == schedule.erc721_transfer
        assert schedule.for_function("swap") == schedule.dex_swap

    def test_unknown_function_uses_default(self):
        schedule = GasSchedule()
        assert schedule.for_function("someUnknownThing") == schedule.default_call


class TestGasPriceOracle:
    def test_price_is_positive(self):
        oracle = GasPriceOracle()
        assert oracle.price_gwei(0) > 0
        assert oracle.price_wei(0) > 0

    def test_price_is_deterministic(self):
        oracle = GasPriceOracle()
        assert oracle.price_wei(12345) == oracle.price_wei(12345)

    def test_price_varies_within_a_day(self):
        oracle = GasPriceOracle()
        prices = {oracle.price_gwei(hour * 3600) for hour in range(24)}
        assert len(prices) > 1

    def test_floor_of_one_gwei(self):
        oracle = GasPriceOracle(base_gwei=0.1, daily_amplitude_gwei=0, swell_amplitude_gwei=0)
        assert oracle.price_gwei(0) == 1.0


@given(st.integers(min_value=0, max_value=10**10))
def test_gas_price_always_positive(timestamp):
    assert GasPriceOracle().price_wei(timestamp) > 0
