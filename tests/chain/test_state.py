"""Unit tests for accounts and the world state."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.chain.account import Account
from repro.chain.errors import InsufficientBalanceError, UnknownAccountError
from repro.chain.state import WorldState
from repro.chain.types import NULL_ADDRESS


class TestAccount:
    def test_new_account_is_eoa(self):
        account = Account(address="0x" + "1" * 40)
        assert not account.is_contract

    def test_code_marks_contract(self):
        account = Account(address="0x" + "1" * 40, code=b"\x60\x80")
        assert account.is_contract

    def test_credit_and_debit(self):
        account = Account(address="0x" + "1" * 40)
        account.credit(100)
        account.debit(40)
        assert account.balance_wei == 60

    def test_debit_beyond_balance_raises(self):
        account = Account(address="0x" + "1" * 40, balance_wei=10)
        with pytest.raises(ValueError):
            account.debit(11)

    def test_negative_amounts_rejected(self):
        account = Account(address="0x" + "1" * 40)
        with pytest.raises(ValueError):
            account.credit(-1)
        with pytest.raises(ValueError):
            account.debit(-1)


class TestWorldState:
    def test_null_address_always_exists(self):
        state = WorldState()
        assert state.exists(NULL_ADDRESS)

    def test_get_or_create_is_lazy(self):
        state = WorldState()
        address = "0x" + "a" * 40
        assert not state.exists(address)
        state.get_or_create(address)
        assert state.exists(address)

    def test_get_unknown_raises(self):
        state = WorldState()
        with pytest.raises(UnknownAccountError):
            state.get("0x" + "b" * 40)

    def test_balance_of_unknown_is_zero(self):
        state = WorldState()
        assert state.balance_of("0x" + "c" * 40) == 0

    def test_transfer_moves_balance(self):
        state = WorldState()
        state.mint_ether("0x" + "a" * 40, 100)
        state.transfer("0x" + "a" * 40, "0x" + "b" * 40, 30)
        assert state.balance_of("0x" + "a" * 40) == 70
        assert state.balance_of("0x" + "b" * 40) == 30

    def test_transfer_insufficient_raises(self):
        state = WorldState()
        with pytest.raises(InsufficientBalanceError):
            state.transfer("0x" + "a" * 40, "0x" + "b" * 40, 1)

    def test_transfer_negative_raises(self):
        state = WorldState()
        with pytest.raises(ValueError):
            state.transfer("0x" + "a" * 40, "0x" + "b" * 40, -5)

    def test_deploy_marks_contract(self):
        state = WorldState()
        address = "0x" + "d" * 40
        state.deploy(address, contract=object())
        assert state.is_contract(address)
        assert state.code_at(address) != b""
        assert state.contract_at(address) is not None

    def test_eoa_has_no_code(self):
        state = WorldState()
        state.get_or_create("0x" + "e" * 40)
        assert state.code_at("0x" + "e" * 40) == b""
        assert not state.is_contract("0x" + "e" * 40)


@given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 2), st.integers(0, 10**18)), max_size=40))
def test_total_supply_is_conserved_by_transfers(moves):
    """Transfers never create or destroy ETH (conservation invariant)."""
    state = WorldState()
    addresses = ["0x" + str(i) * 40 for i in range(3)]
    for address in addresses:
        state.mint_ether(address, 10**18)
    total_before = sum(state.balance_of(address) for address in addresses)
    for source, destination, amount in moves:
        try:
            state.transfer(addresses[source], addresses[destination], amount)
        except InsufficientBalanceError:
            pass
    total_after = sum(state.balance_of(address) for address in addresses)
    assert total_after == total_before
