"""Block hashes, parent links and the chain reorg primitive."""

from __future__ import annotations

import random

import pytest

from repro.chain.block import Block
from repro.chain.chain import Chain, GENESIS_PARENT_HASH
from repro.chain.errors import InvalidReorgError
from repro.chain.node import EthereumNode
from repro.simulation.reorg import apply_random_reorg, build_replacement_blocks

ALICE = "0x" + "a" * 40
BOB = "0x" + "b" * 40


def make_chain(blocks: int = 6, txs_per_block: int = 2) -> Chain:
    chain = Chain()
    chain.faucet(ALICE, 10**24)
    timestamp = chain.genesis_timestamp
    for _ in range(blocks):
        timestamp += 12
        for _ in range(txs_per_block):
            chain.transact(sender=ALICE, to=BOB, value_wei=10**15, timestamp=timestamp)
    return chain


def reinstall(chain: Chain, orphaned: list) -> None:
    """Put a previously orphaned branch back on top of the chain."""
    current_head = chain.blocks[-1]
    chain.reorg(1, [current_head] + orphaned)


class TestBlockHashes:
    def test_hashes_chain_through_parents(self):
        chain = make_chain()
        assert chain.parent_hash(0) == GENESIS_PARENT_HASH
        for number in range(1, len(chain.blocks)):
            assert chain.parent_hash(number) == chain.block_hash(number - 1)

    def test_hashes_are_stable_and_distinct(self):
        chain = make_chain()
        hashes = [chain.block_hash(number) for number in range(len(chain.blocks))]
        assert len(set(hashes)) == len(hashes)
        assert [chain.block_hash(number) for number in range(len(chain.blocks))] == hashes

    def test_node_exposes_block_hash(self):
        chain = make_chain()
        node = EthereumNode(chain)
        assert node.get_block_hash(3) == chain.block_hash(3)
        assert node.get_parent_hash(3) == chain.block_hash(2)
        with pytest.raises(IndexError):
            node.get_block_hash(len(chain.blocks))

    def test_head_hash_tracks_growing_head_block(self):
        chain = make_chain(blocks=2)
        head = chain.head_block_number
        before = chain.block_hash(head)
        # Same timestamp -> the transaction lands in the same head block.
        chain.transact(
            sender=ALICE, to=BOB, value_wei=1, timestamp=chain.head_timestamp
        )
        assert chain.block_hash(head) != before

    def test_tail_hash_commits_to_whole_prefix(self):
        """Changing a deep block changes every later hash via parent links."""
        chain = make_chain()
        head = chain.head_block_number
        upper_hashes = [chain.block_hash(number) for number in (head - 1, head)]
        orphaned = chain.blocks[-3:]
        replacement = [
            Block(
                number=block.number,
                timestamp=block.timestamp,
                transactions=list(block.transactions),
            )
            for block in orphaned
        ]
        del replacement[0].transactions[-1]  # only the deepest block differs
        chain.reorg(3, replacement)
        # The two upper replacement blocks carry identical content...
        assert chain.blocks[head].transaction_hashes == orphaned[-1].transaction_hashes
        # ...but their hashes still differ, because the parent changed.
        assert chain.block_hash(head - 1) != upper_hashes[0]
        assert chain.block_hash(head) != upper_hashes[1]


class TestReorg:
    def test_orphaned_transactions_are_unindexed(self):
        chain = make_chain()
        node = EthereumNode(chain)
        orphaned_hashes = {
            tx.hash for block in chain.blocks[-2:] for tx in block.transactions
        }
        head = chain.head_block_number
        before = len(node.get_transactions_of(ALICE))
        orphaned = chain.reorg(2)
        assert [block.number for block in orphaned] == [head - 1, head]
        for tx_hash in orphaned_hashes:
            assert node.get_transaction(tx_hash) is None
        assert len(node.get_transactions_of(ALICE)) == before - len(orphaned_hashes)

    def test_reinstalled_branch_is_reindexed_and_hashes_restore(self):
        chain = make_chain()
        node = EthereumNode(chain)
        head = chain.head_block_number
        tail_hash = chain.block_hash(head)
        tx_count_before = len(node.get_transactions_of(ALICE))
        orphaned = chain.reorg(3)
        assert chain.head_block_number == head - 3
        reinstall(chain, orphaned)
        assert chain.head_block_number == head
        assert chain.block_hash(head) == tail_hash
        assert len(node.get_transactions_of(ALICE)) == tx_count_before
        for block in orphaned:
            for tx in block.transactions:
                assert node.get_transaction(tx.hash) is tx

    def test_shorter_branch_regresses_head(self):
        chain = make_chain(blocks=6)
        head = chain.head_block_number
        chain.reorg(3)  # no replacement: pure truncation
        assert chain.head_block_number == head - 3
        assert len(chain.blocks) == head - 2

    def test_truncation_uncaches_the_new_head_hash(self):
        """A shortening reorg reopens the fork block: its sealed hash must
        not survive in the cache, or post-reorg growth goes unnoticed."""
        chain = make_chain(blocks=4)
        head = chain.head_block_number
        for number in range(len(chain.blocks)):  # populate the hash cache
            chain.block_hash(number)
        chain.reorg(1)  # block head-1 becomes the open head again
        before_growth = chain.block_hash(head - 1)
        chain.transact(
            sender=ALICE, to=BOB, value_wei=1, timestamp=chain.head_timestamp
        )
        # Mine a sealing block on top, then re-read the grown block's hash.
        chain.transact(
            sender=ALICE, to=BOB, value_wei=1, timestamp=chain.head_timestamp + 12
        )
        assert chain.block_hash(head - 1) != before_growth

    def test_invalid_reorgs_are_rejected(self):
        chain = make_chain()
        with pytest.raises(InvalidReorgError):
            chain.reorg(0)
        with pytest.raises(InvalidReorgError):
            chain.reorg(len(chain.blocks) + 1)
        tail = chain.blocks[-1]
        with pytest.raises(InvalidReorgError):
            chain.reorg(1, [Block(number=tail.number + 5, timestamp=tail.timestamp)])
        with pytest.raises(InvalidReorgError):
            chain.reorg(1, [Block(number=tail.number, timestamp=0)])
        mis_stamped = Block(
            number=tail.number,
            timestamp=tail.timestamp,
            transactions=list(chain.blocks[0].transactions),
        )
        with pytest.raises(InvalidReorgError):
            chain.reorg(1, [mis_stamped])


class TestAdversarialGenerator:
    def test_replacement_respects_slots(self):
        chain = make_chain(blocks=8, txs_per_block=3)
        orphaned_view = chain.blocks[-4:]
        rng = random.Random(7)
        blocks, dropped, _delayed = build_replacement_blocks(
            orphaned_view, rng, drop_probability=0.3, delay_probability=0.3
        )
        assert [b.number for b in blocks] == [b.number for b in orphaned_view]
        total = sum(len(b) for b in blocks)
        assert total == sum(len(b) for b in orphaned_view) - dropped
        for block in blocks:
            for tx in block.transactions:
                assert tx.block_number == block.number
                assert tx.timestamp == block.timestamp

    def test_apply_random_reorg_summary(self):
        chain = make_chain(blocks=8, txs_per_block=3)
        head = chain.head_block_number
        summary = apply_random_reorg(
            chain, 4, random.Random(3), drop_probability=0.5, shorten=1
        )
        assert summary.depth == 4
        assert summary.fork_block == head - 4
        assert summary.new_head == chain.head_block_number == head - 1
        assert summary.replacement_block_count == 3
        assert summary.orphaned_tx_count == 12

    def test_drop_everything_leaves_empty_slots(self):
        chain = make_chain(blocks=5)
        head = chain.head_block_number
        summary = apply_random_reorg(chain, 2, random.Random(0), drop_probability=1.0)
        assert summary.dropped_tx_count == summary.orphaned_tx_count
        assert chain.head_block_number == head
        assert all(len(block) == 0 for block in chain.blocks[-2:])
