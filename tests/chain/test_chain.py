"""Unit tests for transaction execution and block production."""

from __future__ import annotations

import pytest

from repro.chain.chain import COINBASE_ADDRESS, Chain
from repro.chain.errors import (
    ContractExecutionError,
    InsufficientBalanceError,
    InvalidTimestampError,
)
from repro.chain.types import Call
from repro.contracts.erc721 import ERC721Collection
from repro.utils.currency import eth_to_wei

ALICE = "0x" + "a" * 40
BOB = "0x" + "b" * 40


@pytest.fixture()
def chain():
    fresh = Chain(genesis_timestamp=1_000_000)
    fresh.faucet(ALICE, eth_to_wei(100))
    return fresh


class TestPlainTransfers:
    def test_value_moves_and_fee_charged(self, chain):
        tx = chain.transact(sender=ALICE, to=BOB, value_wei=eth_to_wei(1), timestamp=1_000_100)
        assert chain.state.balance_of(BOB) == eth_to_wei(1)
        assert chain.state.balance_of(ALICE) == eth_to_wei(100) - eth_to_wei(1) - tx.fee_wei
        assert chain.state.balance_of(COINBASE_ADDRESS) == tx.fee_wei

    def test_transaction_recorded_with_receipt(self, chain):
        tx = chain.transact(sender=ALICE, to=BOB, value_wei=1, timestamp=1_000_100)
        assert tx.succeeded
        assert chain.transaction(tx.hash) is tx
        assert tx.value_transfers[0].amount_wei == 1

    def test_nonce_increments(self, chain):
        first = chain.transact(sender=ALICE, to=BOB, value_wei=1, timestamp=1_000_100)
        second = chain.transact(sender=ALICE, to=BOB, value_wei=1, timestamp=1_000_100)
        assert second.nonce == first.nonce + 1

    def test_insufficient_balance_raises(self, chain):
        with pytest.raises(InsufficientBalanceError):
            chain.transact(sender=BOB, to=ALICE, value_wei=eth_to_wei(1), timestamp=1_000_100)

    def test_zero_value_transfer_allowed(self, chain):
        tx = chain.transact(sender=ALICE, to=BOB, value_wei=0, timestamp=1_000_100)
        assert tx.succeeded
        assert tx.value_transfers == ()


class TestBlocks:
    def test_one_block_per_timestamp(self, chain):
        chain.transact(sender=ALICE, to=BOB, value_wei=1, timestamp=1_000_100)
        chain.transact(sender=ALICE, to=BOB, value_wei=1, timestamp=1_000_100)
        chain.transact(sender=ALICE, to=BOB, value_wei=1, timestamp=1_000_200)
        assert len(chain.blocks) == 2
        assert len(chain.blocks[0]) == 2
        assert chain.blocks[1].number == 1

    def test_timestamps_must_not_go_backwards(self, chain):
        chain.transact(sender=ALICE, to=BOB, value_wei=1, timestamp=1_000_200)
        with pytest.raises(InvalidTimestampError):
            chain.transact(sender=ALICE, to=BOB, value_wei=1, timestamp=1_000_100)

    def test_head_metadata(self, chain):
        assert chain.head_block_number == -1
        chain.transact(sender=ALICE, to=BOB, value_wei=1, timestamp=1_000_300)
        assert chain.head_block_number == 0
        assert chain.head_timestamp == 1_000_300
        assert chain.transaction_count() == 1


class TestContractExecution:
    def test_contract_call_emits_logs(self, chain):
        collection = ERC721Collection("Apes", "APE")
        address = chain.deploy_contract(collection)
        tx = chain.transact(
            sender=ALICE,
            to=address,
            call=Call("mint", {"to": ALICE}),
            timestamp=1_000_100,
        )
        assert tx.succeeded
        assert any(log.is_erc721_transfer for log in tx.logs)
        assert collection.ownerOf(1) == ALICE

    def test_revert_is_recorded_and_charges_gas(self, chain):
        collection = ERC721Collection("Apes", "APE")
        address = chain.deploy_contract(collection)
        balance_before = chain.state.balance_of(ALICE)
        with pytest.raises(ContractExecutionError):
            chain.transact(
                sender=ALICE,
                to=address,
                call=Call("transferFrom", {"sender": ALICE, "to": BOB, "token_id": 99}),
                timestamp=1_000_100,
            )
        # The reverted transaction is still on chain, with status 0 and no logs.
        reverted = chain.blocks[-1].transactions[-1]
        assert not reverted.succeeded
        assert reverted.logs == ()
        assert chain.state.balance_of(ALICE) == balance_before - reverted.fee_wei

    def test_unknown_function_reverts(self, chain):
        collection = ERC721Collection("Apes", "APE")
        address = chain.deploy_contract(collection)
        with pytest.raises(ContractExecutionError):
            chain.transact(
                sender=ALICE, to=address, call=Call("selfDestruct", {}), timestamp=1_000_100
            )

    def test_deploy_contract_assigns_address_and_code(self, chain):
        collection = ERC721Collection("Apes", "APE")
        address = chain.deploy_contract(collection)
        assert chain.state.is_contract(address)
        assert collection.bound_address == address

    def test_gas_price_override(self, chain):
        tx = chain.transact(
            sender=ALICE, to=BOB, value_wei=1, timestamp=1_000_100, gas_price_wei=7
        )
        assert tx.gas_price_wei == 7
        assert tx.fee_wei == 7 * tx.gas_used


class TestAccountIndex:
    def test_sender_and_recipient_indexed(self, chain):
        tx = chain.transact(sender=ALICE, to=BOB, value_wei=1, timestamp=1_000_100)
        assert tx in chain.account_index.transactions_of(ALICE)
        assert tx in chain.account_index.transactions_of(BOB)

    def test_internal_transfer_parties_indexed(self, chain):
        collection = ERC721Collection("Apes", "APE")
        address = chain.deploy_contract(collection)
        chain.transact(
            sender=ALICE, to=address, call=Call("mint", {"to": ALICE}), timestamp=1_000_100
        )
        assert ALICE in chain.account_index
