"""Unit tests for the label registry and the price oracle."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.chain.types import NULL_ADDRESS
from repro.services.labels import LabelRegistry
from repro.services.oracle import PriceOracle, PriceSeries
from repro.utils.currency import eth_to_wei
from repro.utils.timeutil import SECONDS_PER_DAY, SIMULATION_EPOCH

ADDRESS = "0x" + "1" * 40


class TestLabelRegistry:
    def test_add_and_query(self):
        labels = LabelRegistry()
        labels.add(ADDRESS, "exchange", name="Coinbase")
        assert labels.has_label(ADDRESS, "exchange")
        assert labels.name_of(ADDRESS) == "Coinbase"
        assert "exchange" in labels.labels_of(ADDRESS)

    def test_unlabelled_address(self):
        labels = LabelRegistry()
        assert labels.labels_of(ADDRESS) == set()
        assert not labels.has_label(ADDRESS, "exchange")
        assert ADDRESS not in labels

    def test_graph_exclusion_covers_paper_labels(self):
        labels = LabelRegistry()
        for index, label in enumerate(["exchange", "cefi", "game"]):
            address = "0x" + str(index) * 40
            labels.add(address, label)
            assert labels.is_graph_excluded_service(address)

    def test_null_address_always_excluded(self):
        assert LabelRegistry().is_graph_excluded_service(NULL_ADDRESS)

    def test_marketplace_label_not_excluded(self):
        labels = LabelRegistry()
        labels.add(ADDRESS, "marketplace")
        assert not labels.is_graph_excluded_service(ADDRESS)

    def test_financial_service_covers_defi(self):
        labels = LabelRegistry()
        labels.add(ADDRESS, "dex")
        assert labels.is_financial_service(ADDRESS)
        assert not labels.is_graph_excluded_service(ADDRESS)

    def test_add_many_and_reverse_lookup(self):
        labels = LabelRegistry()
        addresses = ["0x" + str(i) * 40 for i in range(3)]
        labels.add_many(addresses, "exchange")
        assert set(labels.addresses_with_label("exchange")) == set(addresses)
        assert len(labels) == 3


class TestPriceSeries:
    def test_deterministic(self):
        series = PriceSeries(symbol="ETH", base_usd=2600)
        assert series.price_at(SIMULATION_EPOCH) == series.price_at(SIMULATION_EPOCH)

    def test_constant_within_a_day(self):
        series = PriceSeries(symbol="ETH", base_usd=2600)
        assert series.price_at(SIMULATION_EPOCH) == series.price_at(SIMULATION_EPOCH + 1000)

    def test_floor_is_respected(self):
        series = PriceSeries(symbol="X", base_usd=0.001, floor_usd=0.01)
        assert series.price_at(SIMULATION_EPOCH) >= 0.01

    def test_growth_trend(self):
        series = PriceSeries(
            symbol="ETH", base_usd=1000, yearly_growth=1.0, cycle_amplitude=0, wobble_amplitude=0
        )
        later = SIMULATION_EPOCH + 365 * SECONDS_PER_DAY
        assert series.price_at(later) == pytest.approx(2000, rel=0.01)


class TestPriceOracle:
    def test_default_symbols_present(self):
        oracle = PriceOracle()
        for symbol in ("ETH", "LOOKS", "RARI", "USDC", "WETH"):
            assert oracle.has_symbol(symbol)
            assert oracle.usd_price(symbol, SIMULATION_EPOCH) > 0

    def test_unknown_symbol_raises(self):
        with pytest.raises(KeyError):
            PriceOracle().usd_price("DOGE", SIMULATION_EPOCH)

    def test_wei_conversion_matches_eth_conversion(self):
        oracle = PriceOracle()
        assert oracle.wei_to_usd(eth_to_wei(2), SIMULATION_EPOCH) == pytest.approx(
            2 * oracle.usd_price("ETH", SIMULATION_EPOCH)
        )

    def test_token_conversion(self):
        oracle = PriceOracle()
        price = oracle.usd_price("LOOKS", SIMULATION_EPOCH)
        assert oracle.token_to_usd("LOOKS", 10, SIMULATION_EPOCH) == pytest.approx(10 * price)

    def test_usdc_is_stable(self):
        oracle = PriceOracle()
        assert oracle.usd_price("USDC", SIMULATION_EPOCH) == pytest.approx(1.0, abs=0.01)
        assert oracle.usd_price("USDC", SIMULATION_EPOCH + 100 * SECONDS_PER_DAY) == pytest.approx(1.0, abs=0.01)

    def test_register_custom_series(self):
        oracle = PriceOracle()
        oracle.register(PriceSeries(symbol="APE", base_usd=12.0))
        assert oracle.usd_price("APE", SIMULATION_EPOCH) > 0


@given(st.integers(min_value=0, max_value=3000))
def test_eth_price_always_positive(day_offset):
    oracle = PriceOracle()
    assert oracle.usd_price("ETH", SIMULATION_EPOCH + day_offset * SECONDS_PER_DAY) > 0
