"""Unit tests for exchanges, DEX pools, flash loans, OTC desk and games."""

from __future__ import annotations

import pytest

from repro.chain.chain import Chain
from repro.chain.errors import ContractExecutionError
from repro.chain.types import Call
from repro.contracts.erc20 import ERC20Token
from repro.contracts.erc721 import ERC721Collection
from repro.services.defi import (
    ConstantProductPool,
    FlashLoanProvider,
    OTCSwapDesk,
    PositionNFTVault,
)
from repro.services.exchanges import CentralizedExchange
from repro.services.games import NFTStakingGame
from repro.services.labels import LabelRegistry
from repro.utils.currency import eth_to_wei

ALICE = "0x" + "a" * 40
BOB = "0x" + "b" * 40


@pytest.fixture()
def chain():
    fresh = Chain(genesis_timestamp=1_000_000)
    fresh.faucet(ALICE, eth_to_wei(100))
    fresh.faucet(BOB, eth_to_wei(100))
    return fresh


class TestCentralizedExchange:
    def test_hot_wallet_is_labelled_eoa(self, chain):
        labels = LabelRegistry()
        exchange = CentralizedExchange("Coinbase", chain, labels, initial_liquidity_eth=1000)
        assert labels.has_label(exchange.hot_wallet, "exchange")
        assert not chain.state.is_contract(exchange.hot_wallet)

    def test_withdraw_and_deposit_move_eth(self, chain):
        labels = LabelRegistry()
        exchange = CentralizedExchange("Coinbase", chain, labels, initial_liquidity_eth=1000)
        exchange.withdraw_to(ALICE, eth_to_wei(5), timestamp=1_000_100)
        assert chain.state.balance_of(ALICE) == eth_to_wei(105)
        exchange.deposit_from(ALICE, eth_to_wei(2), timestamp=1_000_200)
        assert exchange.withdrawal_count == 1
        assert exchange.deposit_count == 1


class TestConstantProductPool:
    def make_pool(self, chain):
        token = ERC20Token("LooksRare Token", "LOOKS")
        chain.deploy_contract(token)
        pool = ConstantProductPool(token)
        chain.deploy_contract(pool)
        pool.seed_liquidity(token_amount=1_000_000, eth_amount_wei=eth_to_wei(1000), chain=chain)
        return token, pool

    def test_quotes_follow_constant_product(self, chain):
        _, pool = self.make_pool(chain)
        quote = pool.quoteTokenToEth(10_000)
        assert 0 < quote < eth_to_wei(1000)

    def test_swap_token_for_eth(self, chain):
        token, pool = self.make_pool(chain)
        chain.transact(
            sender=ALICE, to=token.bound_address, call=Call("mint", {"to": ALICE, "amount": 50_000}), timestamp=1_000_100
        )
        before = chain.state.balance_of(ALICE)
        chain.transact(
            sender=ALICE, to=pool.bound_address, call=Call("swapTokenForEth", {"amount": 50_000}), timestamp=1_000_200
        )
        assert chain.state.balance_of(ALICE) > before - eth_to_wei(0.1)
        assert token.balanceOf(ALICE) == 0
        assert token.balanceOf(pool.bound_address) == 1_050_000

    def test_swap_without_tokens_reverts(self, chain):
        _, pool = self.make_pool(chain)
        with pytest.raises(ContractExecutionError):
            chain.transact(
                sender=ALICE, to=pool.bound_address, call=Call("swapTokenForEth", {"amount": 10}), timestamp=1_000_100
            )

    def test_swap_eth_for_token(self, chain):
        token, pool = self.make_pool(chain)
        chain.transact(
            sender=ALICE,
            to=pool.bound_address,
            value_wei=eth_to_wei(1),
            call=Call("swapEthForToken", {}),
            timestamp=1_000_100,
        )
        assert token.balanceOf(ALICE) > 0


class TestFlashLoan:
    def test_unrepaid_loan_reverts(self, chain):
        lender = FlashLoanProvider()
        chain.deploy_contract(lender)
        lender.seed_liquidity(eth_to_wei(100), chain)
        # A borrower contract that keeps the money: the loan must revert.
        class Keeper(ERC721Collection):
            EXPOSED_FUNCTIONS = {"keep"}

            def keep(self, ctx):
                return None

        keeper = Keeper("Keeper", "KEEP")
        keeper_address = chain.deploy_contract(keeper)
        with pytest.raises(ContractExecutionError):
            chain.transact(
                sender=ALICE,
                to=lender.bound_address,
                call=Call(
                    "flashLoan",
                    {"receiver": keeper_address, "amount_wei": eth_to_wei(10), "callback": "keep"},
                ),
                timestamp=1_000_100,
            )

    def test_loan_larger_than_liquidity_reverts(self, chain):
        lender = FlashLoanProvider()
        chain.deploy_contract(lender)
        lender.seed_liquidity(eth_to_wei(1), chain)
        with pytest.raises(ContractExecutionError):
            chain.transact(
                sender=ALICE,
                to=lender.bound_address,
                call=Call("flashLoan", {"receiver": ALICE, "amount_wei": eth_to_wei(10), "callback": "x"}),
                timestamp=1_000_100,
            )


class TestPositionVault:
    def test_deposit_mints_position_and_redeem_returns_eth(self, chain):
        positions = ERC721Collection("Positions", "POS")
        chain.deploy_contract(positions)
        vault = PositionNFTVault(positions)
        vault_address = chain.deploy_contract(vault)
        chain.transact(
            sender=ALICE, to=vault_address, value_wei=eth_to_wei(10), call=Call("deposit", {}), timestamp=1_000_100
        )
        assert positions.balanceOf(ALICE) == 1
        assert vault.lockedValue() == eth_to_wei(10)
        balance_before = chain.state.balance_of(ALICE)
        chain.transact(
            sender=ALICE, to=vault_address, call=Call("redeem", {"token_id": 1}), timestamp=1_000_200
        )
        assert chain.state.balance_of(ALICE) > balance_before
        assert vault.lockedValue() == 0

    def test_only_owner_redeems(self, chain):
        positions = ERC721Collection("Positions", "POS")
        chain.deploy_contract(positions)
        vault = PositionNFTVault(positions)
        vault_address = chain.deploy_contract(vault)
        chain.transact(
            sender=ALICE, to=vault_address, value_wei=eth_to_wei(10), call=Call("deposit", {}), timestamp=1_000_100
        )
        with pytest.raises(ContractExecutionError):
            chain.transact(
                sender=BOB, to=vault_address, call=Call("redeem", {"token_id": 1}), timestamp=1_000_200
            )


class TestOTCSwapDesk:
    def test_atomic_swap_moves_nft_and_payment(self, chain):
        collection = ERC721Collection("Apes", "APE")
        collection_address = chain.deploy_contract(collection)
        desk = OTCSwapDesk()
        desk_address = chain.deploy_contract(desk)
        chain.transact(sender=ALICE, to=collection_address, call=Call("mint", {"to": ALICE}), timestamp=1_000_100)
        chain.transact(
            sender=ALICE,
            to=collection_address,
            call=Call("setApprovalForAll", {"operator": desk_address, "approved": True}),
            timestamp=1_000_150,
        )
        seller_before = chain.state.balance_of(ALICE)
        tx = chain.transact(
            sender=BOB,
            to=desk_address,
            value_wei=eth_to_wei(3),
            call=Call("swap", {"collection": collection_address, "token_id": 1, "seller": ALICE, "price_wei": eth_to_wei(3)}),
            timestamp=1_000_200,
        )
        assert collection.ownerOf(1) == BOB
        assert chain.state.balance_of(ALICE) == seller_before + eth_to_wei(3)
        assert any(log.is_erc721_transfer for log in tx.logs)
        assert desk.completedSwaps() == 1

    def test_swap_of_unowned_token_reverts(self, chain):
        collection = ERC721Collection("Apes", "APE")
        collection_address = chain.deploy_contract(collection)
        desk = OTCSwapDesk()
        desk_address = chain.deploy_contract(desk)
        with pytest.raises(ContractExecutionError):
            chain.transact(
                sender=BOB,
                to=desk_address,
                value_wei=eth_to_wei(1),
                call=Call("swap", {"collection": collection_address, "token_id": 9, "seller": ALICE, "price_wei": eth_to_wei(1)}),
                timestamp=1_000_100,
            )


class TestStakingGame:
    def test_stake_and_unstake_round_trip(self, chain):
        collection = ERC721Collection("Apes", "APE")
        collection_address = chain.deploy_contract(collection)
        game = NFTStakingGame("Quest")
        game_address = chain.deploy_contract(game)
        chain.transact(sender=ALICE, to=collection_address, call=Call("mint", {"to": ALICE}), timestamp=1_000_100)
        chain.transact(
            sender=ALICE,
            to=collection_address,
            call=Call("setApprovalForAll", {"operator": game_address, "approved": True}),
            timestamp=1_000_150,
        )
        chain.transact(
            sender=ALICE,
            to=game_address,
            call=Call("stake", {"collection": collection_address, "token_id": 1}),
            timestamp=1_000_200,
        )
        assert collection.ownerOf(1) == game_address
        assert game.stakedCount() == 1
        chain.transact(
            sender=ALICE,
            to=game_address,
            call=Call("unstake", {"collection": collection_address, "token_id": 1}),
            timestamp=1_000_300,
        )
        assert collection.ownerOf(1) == ALICE

    def test_only_staker_can_unstake(self, chain):
        collection = ERC721Collection("Apes", "APE")
        collection_address = chain.deploy_contract(collection)
        game = NFTStakingGame("Quest")
        game_address = chain.deploy_contract(game)
        chain.transact(sender=ALICE, to=collection_address, call=Call("mint", {"to": ALICE}), timestamp=1_000_100)
        chain.transact(
            sender=ALICE,
            to=collection_address,
            call=Call("setApprovalForAll", {"operator": game_address, "approved": True}),
            timestamp=1_000_150,
        )
        chain.transact(
            sender=ALICE,
            to=game_address,
            call=Call("stake", {"collection": collection_address, "token_id": 1}),
            timestamp=1_000_200,
        )
        with pytest.raises(ContractExecutionError):
            chain.transact(
                sender=BOB,
                to=game_address,
                call=Call("unstake", {"collection": collection_address, "token_id": 1}),
                timestamp=1_000_300,
            )
