"""Shared fixtures.

Worlds are expensive relative to unit tests, so the synthetic worlds and
the pipeline runs over them are session-scoped: they are built once and
shared by every test that only reads them.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import PaperReport
from repro.simulation.builder import build_default_world
from repro.simulation.config import SimulationConfig


@pytest.fixture(scope="session")
def tiny_world():
    """A minimal but complete synthetic world."""
    return build_default_world(SimulationConfig.tiny())


@pytest.fixture(scope="session")
def small_world():
    """A mid-sized synthetic world with every scenario kind planted."""
    return build_default_world(SimulationConfig.small())


@pytest.fixture(scope="session")
def tiny_report(tiny_world):
    """A cached full pipeline run over the tiny world."""
    report = PaperReport(tiny_world)
    report.run()
    return report


@pytest.fixture(scope="session")
def small_report(small_world):
    """A cached full pipeline run over the small world."""
    report = PaperReport(small_world)
    report.run()
    return report
