"""Compatibility shim for environments without PEP 660 editable-install support.

The project is fully described by ``pyproject.toml``; this file only lets
``python setup.py develop`` work on older setuptools installations that
lack the ``wheel`` package (e.g. fully offline machines).
"""

from setuptools import setup

setup()
