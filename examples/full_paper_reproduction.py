#!/usr/bin/env python3
"""Regenerate every table and figure of the paper in one run.

Builds the full calibrated default world (seed 42), runs the complete
pipeline and writes the reproduction report to stdout and to
``paper_reproduction_report.txt`` next to this script.

Run with:  python examples/full_paper_reproduction.py
"""

from __future__ import annotations

import pathlib
import time

from repro import PaperReport, build_default_world
from repro.simulation import SimulationConfig


def main() -> None:
    started = time.time()
    world = build_default_world(SimulationConfig())
    built = time.time()
    report = PaperReport(world)
    text = report.render_text()
    finished = time.time()

    print(text)
    print()
    print(f"world construction : {built - started:.1f}s")
    print(f"pipeline + report  : {finished - built:.1f}s")

    score = world.ground_truth.match_against(report.result.washed_nfts())
    print(f"recall on planted activities : {score.recall:.1%}")

    output = pathlib.Path(__file__).with_name("paper_reproduction_report.txt")
    output.write_text(text + "\n", encoding="utf-8")
    print(f"report written to {output}")


if __name__ == "__main__":
    main()
