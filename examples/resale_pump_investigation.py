#!/usr/bin/env python3
"""Resale pumping on OpenSea-style venues (paper Sec. VI-B, VII).

Shows the resale profitability breakdown (how often a pumped NFT finds a
buyer, and whether the operation covers its fees) plus the rarity-game
pattern of the paper's last case study.

Run with:  python examples/resale_pump_investigation.py
"""

from __future__ import annotations

from repro import PaperReport, build_default_world
from repro.core.profitability.case_studies import best_resale_operation, find_rarity_games
from repro.simulation import SimulationConfig
from repro.utils.currency import format_usd


def main() -> None:
    world = build_default_world(SimulationConfig.small(seed=21))
    report = PaperReport(world)
    report.run()

    resale = report.resale_profitability()
    print("Reselling wash-traded NFTs (Sec. VI-B)")
    print("=" * 60)
    print(f"  activities on venues without reward tokens : {resale.total_activities}")
    print(f"  never resold to an outsider                : {resale.unsold_count} ({resale.unsold_fraction:.1%})")
    print(f"  resold the day the manipulation ended      : {resale.sold_same_day_fraction():.1%}")
    print(f"  resold within a month                      : {resale.sold_within_month_fraction():.1%}")
    print()
    print(f"  success rate, price difference only        : {resale.success_rate_gross():.1%}")
    print(f"  success rate, fees included (ETH)          : {resale.success_rate_net():.1%}")
    print(f"  success rate, USD at transaction dates     : {resale.success_rate_usd():.1%}")
    print(f"  mean gain of winners                       : {resale.mean_gain_eth():.2f} ETH")
    print(f"  mean loss of losers                        : {resale.mean_loss_eth():.2f} ETH")

    best = best_resale_operation(resale.outcomes)
    if best is not None:
        component = best.activity.component
        print("\nCase study: the best resale pump")
        print("=" * 60)
        print(f"  NFT              : {component.nft}")
        print(f"  venue            : {best.venue}")
        print(f"  wash trades      : {component.transfer_count}")
        print(f"  bought for       : {best.buy_price_wei / 10**18:.3f} ETH")
        print(f"  resold for       : {best.resell_price_wei / 10**18:.3f} ETH")
        print(f"  fees spent       : {best.fees_wei / 10**18:.3f} ETH")
        print(f"  net profit       : {best.net_profit_eth:.3f} ETH ({format_usd(best.net_profit_usd)})")

    games = find_rarity_games(report.result)
    print("\nRarity games (sell on a venue, hand back off-market for free)")
    print("=" * 60)
    if not games:
        print("  none found in this seed")
    for case in games:
        print(
            f"  seller {case.seller[:12]}… on {case.activity.nft}: "
            f"{case.paid_marketplace_sales} paid sales, "
            f"{case.free_offmarket_returns} free returns"
        )


if __name__ == "__main__":
    main()
