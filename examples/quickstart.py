#!/usr/bin/env python3
"""Quickstart: build a small synthetic world, detect wash trading, print a summary.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import PaperReport, build_default_world
from repro.simulation import SimulationConfig
from repro.utils.currency import wei_to_eth


def main() -> None:
    # 1. Build a deterministic synthetic Ethereum history with planted wash
    #    trading (use SimulationConfig() for the full calibrated world).
    config = SimulationConfig.small(seed=7)
    world = build_default_world(config)
    print(
        f"world built: {world.chain.transaction_count()} transactions in "
        f"{len(world.chain.blocks)} blocks over {config.duration_days} days"
    )

    # 2. Run the paper's pipeline: dataset construction (Sec. III),
    #    candidate search + refinement (Sec. IV-A/B), confirmation (IV-C).
    report = PaperReport(world)
    result = report.run()

    print(f"\nERC-721 transfers collected : {report.dataset.transfer_count}")
    print(f"candidate components        : {result.candidate_count}")
    print(f"confirmed wash activities   : {result.activity_count}")
    print(f"artificial volume           : {wei_to_eth(result.total_wash_volume_wei):,.1f} ETH")

    print("\nconfirmations per technique:")
    for method, count in sorted(result.count_by_method().items(), key=lambda kv: kv[0].value):
        print(f"  {method.value:<14} {count}")

    # 3. Compare against the planted ground truth (only possible in a
    #    simulation -- the whole point of the synthetic world).
    score = world.ground_truth.match_against(result.washed_nfts())
    print(f"\nrecall on planted activities: {score.recall:.1%}")
    print(f"planted negatives leaking through refinement: {score.leaked_planted_negatives}")

    # 4. A couple of headline characterization numbers (Sec. V).
    lifetime = report.figure_lifetime_cdf()
    accounts = report.figure_account_counts()
    print(f"\nactivities lasting <= 1 day : {lifetime.fraction_within_one_day:.1%}")
    print(f"activities lasting <= 10 days: {lifetime.fraction_within_ten_days:.1%}")
    print(f"two-account round trips      : {accounts.fractions['2']:.1%} of activities")


if __name__ == "__main__":
    main()
