#!/usr/bin/env python3
"""Deep dive into LooksRare/Rarible reward farming (paper Sec. VI-A, VII).

Reproduces Table III and the paper's first case study: the single most
profitable reward-farming operation, with its full cost breakdown.

Run with:  python examples/reward_farming_investigation.py
"""

from __future__ import annotations

from repro import PaperReport, build_default_world
from repro.core.profitability.case_studies import best_reward_operation
from repro.simulation import SimulationConfig
from repro.utils.currency import format_usd
from repro.utils.timeutil import format_day


def main() -> None:
    world = build_default_world(SimulationConfig.small(seed=11))
    report = PaperReport(world)
    report.run()

    profitability = report.reward_profitability()
    print("Token reward farming (Table III)")
    print("=" * 60)
    for venue, stats in profitability.items():
        print(f"\n{venue}:")
        print(f"  activities that claimed rewards : {len(stats.outcomes)}")
        print(f"  activities that never claimed   : {stats.unclaimed_count}")
        print(f"  success rate                    : {stats.success_rate:.1%}")
        for outcome_label, successful in (("successful", True), ("failed", False)):
            volume = stats.volume_stats_eth(successful)
            gain = stats.gain_stats_usd(successful)
            group = stats.successful if successful else stats.failed
            print(
                f"  {outcome_label:<10} n={len(group):<3} "
                f"mean volume {volume['mean']:,.2f} ETH, "
                f"mean balance {format_usd(gain['mean'])}, total {format_usd(gain['total'])}"
            )

    best = best_reward_operation(profitability)
    if best is None:
        print("\nno claimed reward-farming operation found")
        return

    component = best.activity.component
    print("\nCase study: the most profitable operation (cf. paper Sec. VII)")
    print("=" * 60)
    print(f"  venue              : {best.venue}")
    print(f"  NFT                : {component.nft}")
    print(f"  colluding accounts : {len(component.accounts)}")
    print(f"  wash trades        : {component.transfer_count}")
    print(f"  first trade        : {format_day(component.first_timestamp)}")
    print(f"  last trade         : {format_day(component.last_timestamp)}")
    print(f"  volume             : {best.volume_eth:,.1f} ETH")
    print(f"  reward tokens      : {best.tokens_claimed:,.1f}")
    print(f"  rewards (USD)      : {format_usd(best.rewards_usd)}")
    print(f"  venue fees paid    : {format_usd(best.nftm_fees_usd)}")
    print(f"  gas paid           : {format_usd(best.transaction_fees_usd)}")
    print(f"  net balance        : {format_usd(best.balance_usd)}")

    print("\nPer-leg price staircase (the fee-sized price decrements the paper observes):")
    for transfer in component.transfers:
        print(
            f"  {format_day(transfer.timestamp)}  "
            f"{transfer.sender[:10]}… -> {transfer.recipient[:10]}…  "
            f"{transfer.price_wei / 10**18:,.3f} ETH on {transfer.marketplace}"
        )


if __name__ == "__main__":
    main()
