#!/usr/bin/env python3
"""A marketplace dashboard consuming the wash-status query service.

The paper's Sec. IX asks whether venues could warn users about wash
trading as it happens; :mod:`repro.serve` is the query surface such a
venue would poll.  This example plays the venue: it watches one
collection through :class:`QueryService` while the monitor follows the
chain, and keeps its *own* local mirror of confirmed activities in sync
through a replay cursor -- including reconciling the retractions a
mid-run chain reorganization forces.

Two serving-layer properties are on display:

* **Versioned reads.**  Every dashboard row is rendered from one
  immutable version; the rollup, the listing and the funnel counters in
  a row can never mix two ticks.
* **Replay cursors.**  The consumer only remembers the last alert
  ``seq`` it applied.  However rarely it polls -- even across the reorg
  -- folding the replayed confirmations and retractions reproduces the
  served truth exactly, which the example verifies at the end.

Run with:  python examples/serving_dashboard.py
"""

from __future__ import annotations

import random
from collections import Counter

from repro import build_default_world
from repro.serve import OFF_MARKET, ServeService, record_key
from repro.simulation import SimulationConfig
from repro.simulation.reorg import apply_random_reorg
from repro.stream import AlertKind
from repro.utils.currency import wei_to_eth


def main() -> None:
    world = build_default_world(SimulationConfig.tiny(seed=11))
    service = ServeService.for_world(world, max_reorg_depth=64)
    query = service.query

    # Warm up until something is confirmed, then watch that collection.
    head = world.node.block_number
    version = service.run(to_block=head // 3, step_blocks=40)
    while not version.confirmed and version.block < head:
        version = service.advance(min(version.block + 40, head))
    watched = version.confirmed[0].nft.contract if version.confirmed else None
    print("Marketplace dashboard over the wash-status query service")
    print("=" * 76)
    print(f"watching collection {watched}\n")

    # The consumer's state: a replay cursor and a local activity mirror.
    cursor = query.replay()  # since_seq=-1: start from the beginning
    mirror: Counter = Counter()
    retractions_seen = 0

    def drain() -> int:
        nonlocal retractions_seen
        drained = 0
        for alert in cursor.poll():
            if alert.kind is AlertKind.ACTIVITY_CONFIRMED:
                mirror[record_key(alert.activity)] += 1
            elif alert.kind is AlertKind.ACTIVITY_RETRACTED:
                mirror[record_key(alert.activity)] -= 1
                retractions_seen += 1
            drained += 1
        return drained

    print(
        f"{'version':>8}  {'block':>6}  {'coll. activities':>16}  "
        f"{'coll. volume':>14}  {'funnel cand.':>12}  {'alerts':>6}  note"
    )
    rng = random.Random(5)
    windows = 8
    for window in range(windows):
        note = ""
        if window == windows // 2:
            # Adversity strikes: the chain tail is reorganized while the
            # dashboard is live -- some confirmations will be withdrawn.
            summary = apply_random_reorg(
                world.chain, 12, rng, drop_probability=0.5
            )
            note = f"reorg depth {summary.depth}!"
        target = min(
            version.block + max(head // windows, 1), world.node.block_number
        )
        version = service.advance(target)
        drained = drain()
        # Unpinned aggregate reads go through the dirty-token-keyed
        # cache; with a single driving thread the current version is
        # exactly the one just published, so the row stays consistent.
        rollup = query.collection_rollup(watched)
        funnel = query.funnel_stats()
        print(
            f"{version.version:>8}  {version.block:>6}  "
            f"{rollup.activity_count:>16}  "
            f"{wei_to_eth(rollup.volume_wei):>10,.1f} ETH  "
            f"{funnel.candidate_count:>12}  {drained:>6}  {note}"
        )
    version = service.advance()  # settle on the final canonical head
    drain()

    print()
    print("Watched-collection verdicts (current version)")
    print("-" * 76)
    page = query.list_confirmed(limit=5, version=version)
    for record in page.records:
        if record.nft.contract != watched:
            continue
        venue = record.marketplace or OFF_MARKET
        print(
            f"  {record.nft.contract}#{record.nft.token_id:<4} "
            f"{len(record.accounts)} accounts  "
            f"{wei_to_eth(record.volume_wei):>8,.1f} ETH  on {venue}  "
            f"confirmed at block {record.confirmed_at_block} "
            f"(seq {record.seq})"
        )

    # The reconciliation proof: the mirror built purely from replayed
    # alerts equals the truth the service currently serves.
    served = Counter(record.key for record in version.confirmed)
    reconciled = +mirror == served
    print()
    print(
        f"replay reconciliation: {sum(served.values())} served activities, "
        f"{retractions_seen} retractions folded, mirror "
        f"{'matches' if reconciled else 'DIVERGES FROM'} the served state"
    )
    if service.cache is not None:
        stats = service.cache.stats
        print(
            f"aggregate cache: {stats.hits} hits / {stats.lookups} lookups "
            f"({stats.hit_rate:.1%})"
        )
    if not reconciled:
        raise SystemExit("replay mirror diverged from the served state")


if __name__ == "__main__":
    main()
