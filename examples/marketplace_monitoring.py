#!/usr/bin/env python3
"""Marketplace-side monitoring (paper Sec. IX, "Can marketplaces prevent
wash trading activities?").

The paper argues venues could flag suspicious NFTs as they trade.  This
example runs the streaming monitor subsystem (:mod:`repro.stream`) over
a simulated chain: an incremental ingest cursor follows the head in
fixed windows, only the tokens each window touched are re-examined, and
subscriber callbacks receive alerts the moment an activity is confirmed
-- no full-dataset rebuild, no pipeline re-run per window.

For every flagged NFT the example reports the *alert latency in blocks*:
how many blocks after the last wash trade the venue's warning would have
gone up (0 = flagged in the very block that completed the activity).

Run with:  python examples/marketplace_monitoring.py
"""

from __future__ import annotations

from repro import build_default_world
from repro.simulation import SimulationConfig
from repro.stream import AlertKind, StreamingMonitor
from repro.utils.currency import wei_to_eth
from repro.utils.timeutil import format_day


def main() -> None:
    world = build_default_world(SimulationConfig.small(seed=33))
    monitor = StreamingMonitor.for_world(world)

    flag_alerts = []
    monitor.subscribe(
        lambda alert: flag_alerts.append(alert)
        if alert.kind is AlertKind.NFT_FLAGGED
        else None
    )

    head = world.node.block_number
    windows = 6
    window_size = max(head // windows, 1)

    print("Incremental wash trading monitoring (streaming monitor)")
    print("=" * 72)
    print(
        f"{'as of block':>12}  {'date':>10}  {'flagged NFTs':>12}  {'new':>4}"
        f"  {'dirty tokens':>12}  {'artificial volume':>18}"
    )

    for window in range(1, windows + 1):
        upper_block = min(window * window_size, head) if window < windows else head
        snapshot = monitor.advance(upper_block)
        timestamp = world.node.get_block(upper_block).timestamp
        new_flags = sum(
            1 for alert in snapshot.alerts if alert.kind is AlertKind.NFT_FLAGGED
        )
        volume = monitor.result().total_wash_volume_wei
        print(
            f"{upper_block:>12}  {format_day(timestamp):>10}"
            f"  {snapshot.flagged_nft_count:>12}  {new_flags:>4}"
            f"  {snapshot.dirty_token_count:>12}"
            f"  {wei_to_eth(volume):>14,.1f} ETH"
        )

    print()
    print("Alert latency per flagged NFT (blocks after the last wash trade)")
    print("-" * 72)
    latencies = []
    for alert in flag_alerts:
        latencies.append(alert.latency_blocks)
        print(
            f"  {alert.nft.contract}#{alert.nft.token_id:<4}"
            f"  flagged at block {alert.block:>6}"
            f"  latency {alert.latency_blocks:>4} blocks"
            f"  ({len(alert.accounts)} accounts)"
        )
    if latencies:
        print()
        print(
            f"  {len(latencies)} NFTs flagged; latency min/median/max = "
            f"{min(latencies)}/{sorted(latencies)[len(latencies) // 2]}/"
            f"{max(latencies)} blocks (window size {window_size})"
        )

    print()
    print(
        "A venue subscribed to these alerts could warn buyers on the NFT page "
        "or withhold reward tokens from the flagged accounts as soon as an "
        "activity is confirmed -- the latency above is bounded by the "
        "monitoring window, not by a nightly batch job."
    )


if __name__ == "__main__":
    main()
