#!/usr/bin/env python3
"""Marketplace-side monitoring (paper Sec. IX, "Can marketplaces prevent
wash trading activities?").

The paper argues venues could flag suspicious NFTs as they trade.  This
example replays the chain in windows of blocks and re-runs the detection
pipeline on each growing prefix, showing how many activities a venue
monitoring the chain would have flagged at each point in time -- i.e. the
same pipeline used as an incremental watchdog rather than a post-hoc
measurement.

Run with:  python examples/marketplace_monitoring.py
"""

from __future__ import annotations

from repro import build_default_world
from repro.core.detectors.pipeline import WashTradingPipeline
from repro.ingest.dataset import build_dataset
from repro.simulation import SimulationConfig
from repro.utils.currency import wei_to_eth
from repro.utils.timeutil import format_day


def main() -> None:
    world = build_default_world(SimulationConfig.small(seed=33))
    node = world.node
    pipeline = WashTradingPipeline(labels=world.labels, is_contract=world.is_contract)

    head = node.block_number
    windows = 6
    window_size = max(head // windows, 1)

    print("Incremental wash trading monitoring")
    print("=" * 72)
    print(f"{'as of block':>12}  {'date':>10}  {'flagged NFTs':>12}  {'new':>4}  {'artificial volume':>18}")

    previously_flagged: set = set()
    for window in range(1, windows + 1):
        upper_block = min(window * window_size, head)
        dataset = build_dataset(node, world.marketplace_addresses, to_block=upper_block)
        result = pipeline.run(dataset)
        flagged = result.washed_nfts()
        new = flagged - previously_flagged
        timestamp = node.get_block(upper_block).timestamp
        print(
            f"{upper_block:>12}  {format_day(timestamp):>10}  {len(flagged):>12}  {len(new):>4}"
            f"  {wei_to_eth(result.total_wash_volume_wei):>14,.1f} ETH"
        )
        previously_flagged |= flagged

    print()
    print(
        "A venue subscribed to this pipeline could warn buyers on the NFT page "
        "or withhold reward tokens from the flagged accounts as soon as an "
        "activity is confirmed."
    )


if __name__ == "__main__":
    main()
